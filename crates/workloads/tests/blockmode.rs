//! Differential validation of batched NFP accounting: on real
//! workload kernels and on randomly generated SPARC programs, every
//! accelerated dispatch mode — block batching, threaded code, and
//! superblock traces — must be bit-identical to per-instruction
//! stepping: category counters, dynamic instruction count, exit
//! status, CPU registers, and RAM contents.

use nfp_cc::FloatMode;
use nfp_sim::fault::{inject, plan, undo, FaultSpace};
use nfp_sim::machine::TrapPolicy;
use nfp_sim::{Dispatch, Machine, RAM_BASE};
use nfp_workloads::synth::{random_program, ProgramShape};
use nfp_workloads::{fse_kernels, hevc_kernels, machine_for, Preset, KERNEL_BUDGET};
use proptest::prelude::*;

/// Runs `m` under `budget` and folds everything observable about the
/// final machine state into a comparable tuple. Errors (traps, budget
/// exhaustion) are part of the observation: all modes must fail the
/// same way at the same instant.
fn observe(
    mut m: Machine,
    dispatch: Dispatch,
    budget: u64,
) -> (String, u64, String, String, String) {
    m.set_dispatch(dispatch);
    let res = m.run(budget);
    (
        format!("{res:?}"),
        m.instret(),
        format!("{:?}", m.counts()),
        format!("{:?}", m.cpu),
        format!("{:?}", m.bus.snapshot_ram()),
    )
}

fn assert_kernel_modes_agree(kernel: &nfp_workloads::Kernel, mode: FloatMode) {
    let stepped = observe(
        machine_for(kernel, mode).expect("machine"),
        Dispatch::Step,
        KERNEL_BUDGET,
    );
    for dispatch in [Dispatch::Block, Dispatch::Threaded, Dispatch::Traced] {
        let batched = observe(
            machine_for(kernel, mode).expect("machine"),
            dispatch,
            KERNEL_BUDGET,
        );
        assert_eq!(
            stepped.0, batched.0,
            "{} [{mode:?}] {dispatch}: run result diverged",
            kernel.name
        );
        assert_eq!(
            stepped.1, batched.1,
            "{} [{mode:?}] {dispatch}: instret diverged",
            kernel.name
        );
        assert_eq!(
            stepped.2, batched.2,
            "{} [{mode:?}] {dispatch}: category counts diverged",
            kernel.name
        );
        assert_eq!(
            stepped.3, batched.3,
            "{} [{mode:?}] {dispatch}: CPU state diverged",
            kernel.name
        );
        assert_eq!(
            stepped.4, batched.4,
            "{} [{mode:?}] {dispatch}: RAM diverged",
            kernel.name
        );
    }
}

#[test]
fn fse_kernel_is_bit_identical_across_modes() {
    let kernels = fse_kernels(&Preset::quick()).expect("kernels");
    for mode in [FloatMode::Hard, FloatMode::Soft] {
        assert_kernel_modes_agree(&kernels[0], mode);
    }
}

#[test]
fn hevc_kernel_is_bit_identical_across_modes() {
    let kernels = hevc_kernels(&Preset::quick()).expect("kernels");
    assert_kernel_modes_agree(&kernels[0], FloatMode::Hard);
}

fn boot_synthetic(words: &[u32], policy: TrapPolicy) -> Machine {
    let mut m = Machine::boot(words);
    m.set_trap_policy(policy);
    m
}

/// Asserts all accelerated modes match stepping on `words`.
fn assert_synthetic_agrees(
    words: &[u32],
    policy: TrapPolicy,
    budget: u64,
) -> Result<(), TestCaseError> {
    let stepped = observe(boot_synthetic(words, policy), Dispatch::Step, budget);
    for dispatch in [Dispatch::Block, Dispatch::Threaded, Dispatch::Traced] {
        let batched = observe(boot_synthetic(words, policy), dispatch, budget);
        prop_assert_eq!(&stepped, &batched, "{} diverged from step", dispatch);
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Random straight-line programs: every instruction is batchable,
    /// so this pins the pure block/threaded accounting paths
    /// (including the doubleword memory traffic the generator emits).
    #[test]
    fn straight_line_programs_agree(body in 4usize..120, seed in 0u64..10_000) {
        let words = random_program(body, seed, ProgramShape::StraightLine).expect("program");
        assert_synthetic_agrees(&words, TrapPolicy::Abort, 5_000)?;
    }

    /// Random branchy programs under both trap policies: annulled
    /// delay slots, loops that exhaust the budget mid-block (or
    /// mid-superblock), and falls off the image edge must all replay
    /// identically.
    #[test]
    fn branchy_programs_agree(body in 4usize..120, seed in 0u64..10_000, recover in 0u32..2) {
        let policy = if recover == 1 { TrapPolicy::Recover } else { TrapPolicy::Abort };
        let words = random_program(body, seed, ProgramShape::Branchy).expect("program");
        assert_synthetic_agrees(&words, policy, 5_000)?;
    }

    /// Programs whose final image word is the delay slot of a CTI: the
    /// batcher must hand over to the step path exactly at the image
    /// boundary rather than running past it.
    #[test]
    fn cti_tail_programs_agree(body in 2usize..60, seed in 0u64..10_000) {
        let words = random_program(body, seed, ProgramShape::CtiTail).expect("program");
        assert_synthetic_agrees(&words, TrapPolicy::Abort, 5_000)?;
    }

    /// SEU flips landing mid-superblock: split the run at an arbitrary
    /// instret (which in traced mode lands inside a formed trace of a
    /// branchy loop), inject a planned fault at the split point, and
    /// finish the run. Campaign replays must be bit-identical no
    /// matter which dispatch mode executes either half.
    #[test]
    fn faults_mid_superblock_agree(
        body in 8usize..80,
        seed in 0u64..10_000,
        split in 1u64..2_000,
        fault_seed in 0u64..10_000,
    ) {
        let words = random_program(body, seed, ProgramShape::Branchy).expect("program");
        let space = FaultSpace {
            max_instret: split,
            code_len: words.len() as u32,
            ram_ranges: vec![(RAM_BASE, 4096)],
            fp: true,
        };
        let faults = plan(&space, 1, fault_seed);
        let observe_faulted = |dispatch: Dispatch| {
            let mut m = boot_synthetic(&words, TrapPolicy::Recover);
            m.set_dispatch(dispatch);
            // First half: stop exactly at the flip instant, even if it
            // lands inside a superblock.
            let pre = format!("{:?}", m.run_until(split));
            let mut armed = Vec::new();
            if pre == "Ok(())" {
                for f in &faults {
                    armed.push(inject(&mut m, f).expect("in-bounds injection"));
                }
            }
            let res = m.run(5_000);
            for a in &armed {
                undo(&mut m, a).expect("undo patches back");
            }
            (
                pre,
                format!("{res:?}"),
                m.instret(),
                format!("{:?}", m.counts()),
                format!("{:?}", m.cpu),
                format!("{:?}", m.bus.snapshot_ram()),
            )
        };
        let stepped = observe_faulted(Dispatch::Step);
        for dispatch in [Dispatch::Block, Dispatch::Threaded, Dispatch::Traced] {
            prop_assert_eq!(&stepped, &observe_faulted(dispatch), "{} diverged", dispatch);
        }
    }
}

/// The generator shapes must actually reach RAM_BASE-relative code
/// (guards the literal the generator uses against drift).
#[test]
fn generator_base_matches_simulator_ram_base() {
    let words = random_program(4, 0, ProgramShape::StraightLine).expect("program");
    let m = Machine::boot(&words);
    assert_eq!(m.code_base(), RAM_BASE);
}
