//! A small programmatic assembler with labels.
//!
//! Used to hand-write the calibration kernels of the paper's Table II
//! (a reference loop and a test loop stuffed with one instruction
//! category) and for simulator tests. Each emitted slot is one 32-bit
//! word; labels resolve to word-relative displacements at
//! [`Assembler::finish`] time.

use crate::cond::{FCond, ICond};
use crate::encode::encode;
use crate::insn::{AluOp, Instr, MemSize, Operand};
use crate::regs::{FReg, Reg, G0};
use std::collections::HashMap;
use std::fmt;

/// Errors produced while resolving an assembled program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AsmError {
    /// A referenced label was never defined.
    UndefinedLabel(String),
    /// A label was defined twice.
    DuplicateLabel(String),
    /// A branch target is out of `disp22` range.
    BranchOutOfRange {
        /// The target label.
        label: String,
        /// The required displacement in words.
        words: i64,
    },
}

impl fmt::Display for AsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AsmError::UndefinedLabel(l) => write!(f, "undefined label `{l}`"),
            AsmError::DuplicateLabel(l) => write!(f, "duplicate label `{l}`"),
            AsmError::BranchOutOfRange { label, words } => {
                write!(f, "branch to `{label}` out of range ({words} words)")
            }
        }
    }
}

impl std::error::Error for AsmError {}

enum Slot {
    /// A fully resolved instruction.
    Ready(Instr),
    /// Raw data word.
    Word(u32),
    /// Conditional branch to a label.
    Branch {
        cond: ICond,
        annul: bool,
        label: String,
    },
    /// FP conditional branch to a label.
    FBranch {
        cond: FCond,
        annul: bool,
        label: String,
    },
    /// Call to a label.
    Call { label: String },
    /// `sethi %hi(label_address), rd`.
    SethiHi { rd: Reg, label: String },
    /// `or rd, %lo(label_address), rd`.
    OrLo { rd: Reg, label: String },
}

/// Label-resolving assembler. `base` is the load address of the first
/// emitted word (used for `%hi`/`%lo` materialisation).
pub struct Assembler {
    base: u32,
    slots: Vec<Slot>,
    labels: HashMap<String, usize>,
    error: Option<AsmError>,
}

impl Assembler {
    /// Creates an assembler for code loaded at `base`.
    pub fn new(base: u32) -> Self {
        Assembler {
            base,
            slots: Vec::new(),
            labels: HashMap::new(),
            error: None,
        }
    }

    /// Current position in words from the start.
    pub fn here(&self) -> usize {
        self.slots.len()
    }

    /// Defines `name` at the current position.
    pub fn label(&mut self, name: &str) -> &mut Self {
        if self
            .labels
            .insert(name.to_string(), self.slots.len())
            .is_some()
            && self.error.is_none()
        {
            self.error = Some(AsmError::DuplicateLabel(name.to_string()));
        }
        self
    }

    /// Emits a resolved instruction.
    pub fn push(&mut self, i: Instr) -> &mut Self {
        self.slots.push(Slot::Ready(i));
        self
    }

    /// Emits a raw data word.
    pub fn word(&mut self, w: u32) -> &mut Self {
        self.slots.push(Slot::Word(w));
        self
    }

    /// Emits a `nop`.
    pub fn nop(&mut self) -> &mut Self {
        self.push(Instr::NOP)
    }

    /// Emits an ALU operation.
    pub fn alu(&mut self, op: AluOp, rs1: Reg, op2: impl Into<Operand>, rd: Reg) -> &mut Self {
        self.push(Instr::Alu {
            op,
            rd,
            rs1,
            op2: op2.into(),
        })
    }

    /// `mov op2, rd` (synthesised as `or %g0, op2, rd`).
    pub fn mov(&mut self, op2: impl Into<Operand>, rd: Reg) -> &mut Self {
        self.alu(AluOp::Or, G0, op2, rd)
    }

    /// Materialises an arbitrary 32-bit constant via `sethi` + `or`.
    pub fn set32(&mut self, value: u32, rd: Reg) -> &mut Self {
        self.push(Instr::Sethi {
            rd,
            imm22: value >> 10,
        });
        if value & 0x3ff != 0 {
            self.alu(AluOp::Or, rd, Operand::Imm((value & 0x3ff) as i32), rd);
        }
        self
    }

    /// `sethi %hi(label), rd` — pairs with [`Assembler::or_lo`].
    pub fn sethi_hi(&mut self, label: &str, rd: Reg) -> &mut Self {
        self.slots.push(Slot::SethiHi {
            rd,
            label: label.to_string(),
        });
        self
    }

    /// `or rd, %lo(label), rd`.
    pub fn or_lo(&mut self, label: &str, rd: Reg) -> &mut Self {
        self.slots.push(Slot::OrLo {
            rd,
            label: label.to_string(),
        });
        self
    }

    /// Conditional branch to a label (delay slot NOT inserted).
    pub fn b(&mut self, cond: ICond, label: &str) -> &mut Self {
        self.slots.push(Slot::Branch {
            cond,
            annul: false,
            label: label.to_string(),
        });
        self
    }

    /// Annulled conditional branch to a label.
    pub fn b_a(&mut self, cond: ICond, label: &str) -> &mut Self {
        self.slots.push(Slot::Branch {
            cond,
            annul: true,
            label: label.to_string(),
        });
        self
    }

    /// FP conditional branch to a label.
    pub fn fb(&mut self, cond: FCond, label: &str) -> &mut Self {
        self.slots.push(Slot::FBranch {
            cond,
            annul: false,
            label: label.to_string(),
        });
        self
    }

    /// `ba` unconditional branch to a label.
    pub fn ba(&mut self, label: &str) -> &mut Self {
        self.b(ICond::A, label)
    }

    /// `call label` (delay slot NOT inserted).
    pub fn call(&mut self, label: &str) -> &mut Self {
        self.slots.push(Slot::Call {
            label: label.to_string(),
        });
        self
    }

    /// `jmpl %o7 + 8, %g0` — the standard `retl` return.
    pub fn retl(&mut self) -> &mut Self {
        self.push(Instr::Jmpl {
            rd: G0,
            rs1: crate::regs::O7,
            op2: Operand::Imm(8),
        })
    }

    /// Integer load.
    pub fn ld(
        &mut self,
        size: MemSize,
        signed: bool,
        rs1: Reg,
        op2: impl Into<Operand>,
        rd: Reg,
    ) -> &mut Self {
        self.push(Instr::Load {
            size,
            signed,
            rd,
            rs1,
            op2: op2.into(),
        })
    }

    /// Integer store.
    pub fn st(&mut self, size: MemSize, rd: Reg, rs1: Reg, op2: impl Into<Operand>) -> &mut Self {
        self.push(Instr::Store {
            size,
            rd,
            rs1,
            op2: op2.into(),
        })
    }

    /// FP double load.
    pub fn lddf(&mut self, rs1: Reg, op2: impl Into<Operand>, rd: FReg) -> &mut Self {
        self.push(Instr::LoadF {
            double: true,
            rd,
            rs1,
            op2: op2.into(),
        })
    }

    /// FP double store.
    pub fn stdf(&mut self, rd: FReg, rs1: Reg, op2: impl Into<Operand>) -> &mut Self {
        self.push(Instr::StoreF {
            double: true,
            rd,
            rs1,
            op2: op2.into(),
        })
    }

    /// FPU register operation.
    pub fn fpop(&mut self, op: crate::insn::FpOp, rs1: FReg, rs2: FReg, rd: FReg) -> &mut Self {
        self.push(Instr::FpOp { op, rd, rs1, rs2 })
    }

    /// `ta imm` — software trap (the simulator's exit/host hook).
    pub fn ta(&mut self, trap: i32) -> &mut Self {
        self.push(Instr::Ticc {
            cond: ICond::A,
            rs1: G0,
            op2: Operand::Imm(trap),
        })
    }

    /// Resolves all labels and returns the encoded words.
    pub fn finish(self) -> Result<Vec<u32>, AsmError> {
        if let Some(e) = self.error {
            return Err(e);
        }
        let labels = self.labels;
        let base = self.base;
        let resolve = |name: &str| -> Result<usize, AsmError> {
            labels
                .get(name)
                .copied()
                .ok_or_else(|| AsmError::UndefinedLabel(name.to_string()))
        };
        let mut out = Vec::with_capacity(self.slots.len());
        for (idx, slot) in self.slots.iter().enumerate() {
            let word = match slot {
                Slot::Ready(i) => encode(*i),
                Slot::Word(w) => *w,
                Slot::Branch { cond, annul, label } => {
                    let target = resolve(label)?;
                    let disp = target as i64 - idx as i64;
                    if !(-0x20_0000..0x20_0000).contains(&disp) {
                        return Err(AsmError::BranchOutOfRange {
                            label: label.clone(),
                            words: disp,
                        });
                    }
                    encode(Instr::Branch {
                        cond: *cond,
                        annul: *annul,
                        disp22: disp as i32,
                    })
                }
                Slot::FBranch { cond, annul, label } => {
                    let target = resolve(label)?;
                    let disp = target as i64 - idx as i64;
                    if !(-0x20_0000..0x20_0000).contains(&disp) {
                        return Err(AsmError::BranchOutOfRange {
                            label: label.clone(),
                            words: disp,
                        });
                    }
                    encode(Instr::FBranch {
                        cond: *cond,
                        annul: *annul,
                        disp22: disp as i32,
                    })
                }
                Slot::Call { label } => {
                    let target = resolve(label)?;
                    encode(Instr::Call {
                        disp30: target as i32 - idx as i32,
                    })
                }
                Slot::SethiHi { rd, label } => {
                    let target = resolve(label)?;
                    let addr = base + (target as u32) * 4;
                    encode(Instr::Sethi {
                        rd: *rd,
                        imm22: addr >> 10,
                    })
                }
                Slot::OrLo { rd, label } => {
                    let target = resolve(label)?;
                    let addr = base + (target as u32) * 4;
                    encode(Instr::Alu {
                        op: AluOp::Or,
                        rd: *rd,
                        rs1: *rd,
                        op2: Operand::Imm((addr & 0x3ff) as i32),
                    })
                }
            };
            out.push(word);
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decode::decode;

    #[test]
    fn backward_branch_resolves() {
        let mut a = Assembler::new(0x4000_0000);
        a.label("top").nop().nop().ba("top").nop();
        let words = a.finish().unwrap();
        assert_eq!(
            decode(words[2]),
            Instr::Branch {
                cond: ICond::A,
                annul: false,
                disp22: -2,
            }
        );
    }

    #[test]
    fn forward_call_resolves() {
        let mut a = Assembler::new(0x4000_0000);
        a.call("f").nop().label("f").retl().nop();
        let words = a.finish().unwrap();
        assert_eq!(decode(words[0]), Instr::Call { disp30: 2 });
    }

    #[test]
    fn set32_materialises_constants() {
        for value in [0u32, 1, 0x3ff, 0x400, 0xdead_beef, u32::MAX] {
            let mut a = Assembler::new(0);
            a.set32(value, Reg::o(0));
            let words = a.finish().unwrap();
            // Emulate sethi+or by hand.
            let mut r = 0u32;
            for w in words {
                match decode(w) {
                    Instr::Sethi { imm22, .. } => r = imm22 << 10,
                    Instr::Alu {
                        op: AluOp::Or,
                        op2: Operand::Imm(v),
                        ..
                    } => r |= v as u32,
                    other => panic!("unexpected {other:?}"),
                }
            }
            assert_eq!(r, value);
        }
    }

    #[test]
    fn hi_lo_pair_resolves_to_address() {
        let mut a = Assembler::new(0x4000_0000);
        a.sethi_hi("data", Reg::o(0))
            .or_lo("data", Reg::o(0))
            .retl()
            .nop()
            .label("data")
            .word(0x1234_5678);
        let words = a.finish().unwrap();
        let addr = 0x4000_0000u32 + 4 * 4;
        match decode(words[0]) {
            Instr::Sethi { imm22, .. } => assert_eq!(imm22, addr >> 10),
            other => panic!("{other:?}"),
        }
        match decode(words[1]) {
            Instr::Alu {
                op2: Operand::Imm(v),
                ..
            } => assert_eq!(v as u32, addr & 0x3ff),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn undefined_label_is_an_error() {
        let mut a = Assembler::new(0);
        a.ba("nowhere").nop();
        assert_eq!(
            a.finish(),
            Err(AsmError::UndefinedLabel("nowhere".to_string()))
        );
    }

    #[test]
    fn duplicate_label_is_an_error() {
        let mut a = Assembler::new(0);
        a.label("x").nop().label("x");
        assert_eq!(a.finish(), Err(AsmError::DuplicateLabel("x".to_string())));
    }
}
