//! Frequency Selective Extrapolation (FSE): reconstruction of image
//! regions with unknown content as a weighted superposition of Fourier
//! basis functions (Seiler & Kaup 2010/2011) — the paper's
//! double-precision, FFT-dominated workload.
//!
//! * [`native`] — reference Rust implementation;
//! * [`minic`] — the same algorithm as a generated mini-C program;
//! * [`tables`] — shared FFT/basis constants and parameters.

pub mod minic;
pub mod native;
pub mod tables;

pub use native::conceal;
pub use tables::ITERATIONS;
