//! The kernel registry: the evaluation's test set.
//!
//! The paper measures 36 HEVC bitstreams (4 encoder configurations ×
//! 3 quantisation parameters × 3 input sequences) and 24 FSE kernels
//! (24 images, each with its own loss mask), each compiled with and
//! without FPU instructions — 120 kernels in total for Table III.
//!
//! A [`Kernel`] bundles the workload input blob, the expected emitted
//! words (computed by the native reference implementations), and a
//! deterministic per-kernel measurement seed.

use crate::fse;
use crate::hevc::{self, Config};
use crate::pixels::fnv1a;
use crate::synth::{loss_mask, test_image, test_sequence, Scene};
use nfp_cc::{compile, CompileOptions, FloatMode, Program};
use nfp_core::NfpError;
use nfp_sim::{Machine, MachineConfig};
use std::sync::OnceLock;

/// Which program a kernel runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Workload {
    /// The mini-HEVC decoder.
    Hevc,
    /// Frequency Selective Extrapolation.
    Fse,
}

/// One evaluation kernel.
#[derive(Debug, Clone)]
pub struct Kernel {
    /// Identifier, e.g. `hevc_movobj_lowdelay_qp32` or `fse_img07`.
    pub name: String,
    /// Which program decodes this kernel's input.
    pub workload: Workload,
    /// Input blob, written at `0x4100_0000` before the run.
    pub input: Vec<u8>,
    /// Expected emitted words (checksums/statistics), from the native
    /// reference implementation.
    pub expected_words: Vec<u32>,
    /// Per-kernel measurement seed (instrument noise).
    pub seed: u64,
}

/// Workload sizing. [`Preset::paper`] matches the evaluation scale;
/// [`Preset::quick`] keeps unit tests fast.
#[derive(Debug, Clone, Copy)]
pub struct Preset {
    /// Video width in pixels.
    pub video_w: usize,
    /// Video height in pixels.
    pub video_h: usize,
    /// Frames per video kernel.
    pub frames: usize,
    /// FSE image side length.
    pub fse_size: usize,
    /// Lost 8×8 blocks per FSE kernel.
    pub fse_blocks: usize,
    /// FSE iterations per block.
    pub fse_iters: u32,
}

impl Preset {
    /// Evaluation-scale workloads.
    pub fn paper() -> Self {
        Preset {
            video_w: 64,
            video_h: 48,
            frames: 6,
            fse_size: 48,
            fse_blocks: 4,
            fse_iters: fse::ITERATIONS as u32,
        }
    }

    /// Small workloads for fast tests.
    pub fn quick() -> Self {
        Preset {
            video_w: 32,
            video_h: 24,
            frames: 3,
            fse_size: 32,
            fse_blocks: 2,
            fse_iters: 8,
        }
    }
}

/// The three QPs of the evaluation (paper Section VI-A).
pub const QPS: [u32; 3] = [10, 32, 45];

/// Builds the 36 HEVC kernels (4 configs × 3 QPs × 3 sequences).
pub fn hevc_kernels(preset: &Preset) -> Result<Vec<Kernel>, NfpError> {
    let mut kernels = Vec::with_capacity(36);
    let mut seed = 1000u64;
    for scene in Scene::ALL {
        let frames = test_sequence(scene, preset.video_w, preset.video_h, preset.frames);
        for config in Config::ALL {
            for qp in QPS {
                let name = format!("hevc_{}_{}_qp{}", scene.name(), config.name(), qp);
                let encoded = hevc::encode(&frames, config, qp)?;
                let decoded = hevc::decode(&encoded.bytes).map_err(|e| NfpError::Workload {
                    what: name.clone(),
                    reason: format!("own bitstream does not decode: {e}"),
                })?;
                let mut all_bytes = Vec::new();
                for f in &decoded.frames {
                    all_bytes.extend_from_slice(&f.data);
                }
                let activity_bits = decoded.activity.to_bits();
                kernels.push(Kernel {
                    name,
                    workload: Workload::Hevc,
                    input: hevc::minic::input_blob(&encoded.bytes),
                    expected_words: vec![
                        fnv1a(&all_bytes),
                        (activity_bits >> 32) as u32,
                        activity_bits as u32,
                    ],
                    seed,
                });
                seed += 1;
            }
        }
    }
    Ok(kernels)
}

/// Builds the 24 FSE kernels (24 images with individual masks).
pub fn fse_kernels(preset: &Preset) -> Result<Vec<Kernel>, NfpError> {
    let mut kernels = Vec::with_capacity(24);
    for i in 0..24u64 {
        let img = test_image(preset.fse_size, preset.fse_size, i);
        let mask = loss_mask(preset.fse_size, preset.fse_size, preset.fse_blocks, i);
        // The lost samples carry arbitrary content in a real error
        // pattern; zero them like the simulated program's input.
        let mut lost = img.clone();
        for (p, &m) in lost.data.iter_mut().zip(&mask) {
            if m {
                *p = 0;
            }
        }
        let mut concealed = lost.clone();
        fse::conceal(&mut concealed, &mask, preset.fse_iters as usize);
        kernels.push(Kernel {
            name: format!("fse_img{i:02}"),
            workload: Workload::Fse,
            input: fse::minic::input_blob(&lost, &mask, preset.fse_iters),
            expected_words: vec![fnv1a(&concealed.data)],
            seed: 2000 + i,
        });
    }
    Ok(kernels)
}

/// All 60 kernels of the evaluation (each is later run in float and
/// fixed variants, giving the paper's M = 120).
pub fn all_kernels(preset: &Preset) -> Result<Vec<Kernel>, NfpError> {
    let mut v = hevc_kernels(preset)?;
    v.extend(fse_kernels(preset)?);
    Ok(v)
}

/// The compiled workload program for a (workload, float-mode) pair.
/// Programs are shared by all kernels of a workload and cached (a
/// compile failure is cached too, and returned on every lookup).
pub fn program(workload: Workload, mode: FloatMode) -> Result<&'static Program, NfpError> {
    static CACHE: OnceLock<[OnceLock<Result<Program, NfpError>>; 4]> = OnceLock::new();
    let cache = CACHE.get_or_init(Default::default);
    let idx = match (workload, mode) {
        (Workload::Hevc, FloatMode::Hard) => 0,
        (Workload::Hevc, FloatMode::Soft) => 1,
        (Workload::Fse, FloatMode::Hard) => 2,
        (Workload::Fse, FloatMode::Soft) => 3,
    };
    cache[idx]
        .get_or_init(|| {
            let source = match workload {
                Workload::Hevc => hevc::minic::decoder_source(),
                Workload::Fse => fse::minic::fse_source(),
            };
            compile(&source, &CompileOptions::new(mode)).map_err(|e| NfpError::Workload {
                what: format!("{workload:?}/{mode:?} program"),
                reason: e.to_string(),
            })
        })
        .as_ref()
        .map_err(Clone::clone)
}

/// Address where kernels read their input.
pub const INPUT_BASE: u32 = 0x4100_0000;

/// Address where kernels write their output.
pub const OUTPUT_BASE: u32 = 0x4200_0000;

/// A machine loaded with a kernel's program and input, ready to run.
pub fn machine_for(kernel: &Kernel, mode: FloatMode) -> Result<Machine, NfpError> {
    let program = program(kernel.workload, mode)?;
    let mut machine = Machine::new(MachineConfig {
        fpu_enabled: mode == FloatMode::Hard,
        ..MachineConfig::default()
    });
    machine.load_image(program.base, &program.words)?;
    machine
        .bus
        .write_bytes(INPUT_BASE, &kernel.input)
        .map_err(nfp_sim::SimError::from)?;
    Ok(machine)
}

/// Instruction budget generous enough for the largest soft-float
/// kernel.
pub const KERNEL_BUDGET: u64 = 20_000_000_000;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_has_paper_counts() {
        let preset = Preset::quick();
        assert_eq!(hevc_kernels(&preset).expect("hevc kernels").len(), 36);
        assert_eq!(fse_kernels(&preset).expect("fse kernels").len(), 24);
        assert_eq!(all_kernels(&preset).expect("all kernels").len(), 60);
    }

    #[test]
    fn kernel_names_are_unique() {
        let preset = Preset::quick();
        let kernels = all_kernels(&preset).expect("all kernels");
        let mut names: Vec<_> = kernels.iter().map(|k| &k.name).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), kernels.len());
    }

    #[test]
    fn kernels_have_expected_words() {
        let preset = Preset::quick();
        for k in all_kernels(&preset).expect("all kernels") {
            assert!(!k.expected_words.is_empty(), "{}", k.name);
            assert!(!k.input.is_empty(), "{}", k.name);
        }
    }
}
