//! Adversarial no-panic fuzz harness for the simulator.
//!
//! Long fault campaigns feed the machine corrupted instruction
//! streams, truncated images, and RAM geometries no hand-written
//! workload would produce. The robustness contract is that *nothing*
//! a guest image can contain panics `nfp-sim`: every malformed input
//! surfaces as a typed [`SimError`] / [`BusFault`] (or a clean run
//! result). Each property here simply drives the public API with
//! hostile inputs — a panic anywhere in the simulator fails the test.
//!
//! CI runs this file a second time with `PROPTEST_CASES` elevated.

use nfp_sim::fault::{inject, plan, undo, FaultSpace};
use nfp_sim::machine::TrapPolicy;
use nfp_sim::{Machine, MachineConfig, SimError, Watchdog, RAM_BASE};
use proptest::prelude::*;
use std::time::Duration;

/// A machine with a small RAM (fast per-case allocation) in the given
/// execution/trap/FPU configuration.
fn small_machine(block: bool, recover: bool, fpu: bool) -> Machine {
    Machine::new(MachineConfig {
        ram_size: 1 << 20,
        fpu_enabled: fpu,
        block_mode: block,
        trap_policy: if recover {
            TrapPolicy::Recover
        } else {
            TrapPolicy::Abort
        },
        ..MachineConfig::default()
    })
}

/// Runs the loaded machine to completion under a bounded watchdog,
/// asserting only that no panic escapes: any `Result` is acceptable.
fn drive(m: &mut Machine) {
    let wd = Watchdog {
        max_instrs: 20_000,
        wall: Some(Duration::from_secs(5)),
    };
    let _ = m.run_watchdog(&wd);
}

proptest! {
    // Arbitrary instruction words through the full run loop: every
    // combination of step/block mode, abort/recover policy, and
    // FPU presence. This is the harness that originally surfaced the
    // ragged-RAM-edge slicing panics fixed in `bus.rs`.
    #[test]
    fn arbitrary_instruction_words_never_panic(
        words in prop::collection::vec(any::<u32>(), 1..96),
        block in any::<bool>(),
        recover in any::<bool>(),
        fpu in any::<bool>(),
    ) {
        let mut m = small_machine(block, recover, fpu);
        m.load_image(RAM_BASE, &words).expect("aligned in-RAM image loads");
        drive(&mut m);
    }

    // The same arbitrary stream must behave identically under batched
    // and stepped accounting even when it is garbage: block mode is an
    // optimisation, not a semantic switch, and corrupted code is
    // exactly what fault campaigns execute in block mode.
    #[test]
    fn arbitrary_words_agree_across_modes(
        words in prop::collection::vec(any::<u32>(), 1..64),
        recover in any::<bool>(),
    ) {
        let observe = |block: bool| {
            let mut m = small_machine(block, recover, true);
            m.load_image(RAM_BASE, &words).expect("image loads");
            let wd = Watchdog { max_instrs: 5_000, wall: None };
            let res = m.run_watchdog(&wd);
            (format!("{res:?}"), m.instret(), *m.counts())
        };
        prop_assert_eq!(observe(false), observe(true));
    }

    // Truncated and out-of-bounds images: random RAM geometry (sizes
    // deliberately not multiples of the access width), image bases at
    // and past the RAM edge. `load_image` must either succeed or
    // return a typed error — and a machine whose image straddles the
    // edge must still run without panicking.
    #[test]
    fn malformed_images_never_panic(
        ram_size in 4096u32..(1 << 16),
        base_off in 0u32..(1 << 17),
        words in prop::collection::vec(any::<u32>(), 0..64),
        block in any::<bool>(),
    ) {
        let mut m = Machine::new(MachineConfig {
            ram_size,
            block_mode: block,
            ..MachineConfig::default()
        });
        // Unaligned bases must be rejected, never aliased.
        if let Err(e) = m.load_image(RAM_BASE + base_off, &words) {
            let _ = e.to_string();
            return Ok(());
        }
        drive(&mut m);
    }

    // Overlapping segment loads: the second image either lands
    // disjoint (and loads) or overlaps (and is rejected) — both paths
    // must leave a runnable, panic-free machine.
    #[test]
    fn overlapping_segments_never_panic(
        words in prop::collection::vec(any::<u32>(), 1..32),
        second_off in 0u32..256,
        second in prop::collection::vec(any::<u32>(), 1..32),
    ) {
        let mut m = small_machine(true, true, true);
        m.load_image(RAM_BASE, &words).expect("image loads");
        let mut bytes = Vec::new();
        for w in &second {
            bytes.extend_from_slice(&w.to_be_bytes());
        }
        match m.bus.write_bytes(RAM_BASE + second_off * 4, &bytes) {
            Ok(()) => {}
            Err(e) => { let _ = e.to_string(); }
        }
        drive(&mut m);
    }

    // Seeded fault plans over arbitrary code: inject, run, undo,
    // restore — the full campaign replay cycle on garbage programs.
    #[test]
    fn fault_replay_cycle_never_panics(
        words in prop::collection::vec(any::<u32>(), 4..48),
        seed in any::<u64>(),
        block in any::<bool>(),
    ) {
        let mut m = small_machine(block, true, true);
        m.load_image(RAM_BASE, &words).expect("image loads");
        let cp = m.checkpoint();
        let space = FaultSpace {
            max_instret: 64,
            code_len: words.len() as u32,
            ram_ranges: vec![(RAM_BASE, 4096)],
            fp: true,
        };
        for fault in plan(&space, 8, seed) {
            let armed = inject(&mut m, &fault).expect("in-bounds injection");
            drive(&mut m);
            undo(&mut m, &armed).expect("undo patches back");
            m.restore(&cp);
        }
    }

    // run_until must stop exactly at its target or report HaltedEarly,
    // never panic, even when the target lands mid-block of corrupted
    // code.
    #[test]
    fn run_until_on_garbage_never_panics(
        words in prop::collection::vec(any::<u32>(), 1..48),
        target in 0u64..256,
        block in any::<bool>(),
    ) {
        let mut m = small_machine(block, true, true);
        m.load_image(RAM_BASE, &words).expect("image loads");
        match m.run_until(target) {
            Ok(()) => prop_assert_eq!(m.instret(), target),
            Err(SimError::HaltedEarly { instret }) => prop_assert!(instret <= target),
            Err(e) => { let _ = e.to_string(); }
        }
    }
}
