//! SEU fault-injection campaigns over the evaluation kernels.
//!
//! A campaign measures a kernel's soft-error vulnerability on the
//! modelled LEON3-class core: it runs the kernel once fault-free (the
//! *golden* run), then replays it N times, each replay injecting a
//! single seeded bit-flip into architectural state — integer/FP
//! registers, condition codes, RAM, or the instruction stream — at a
//! chosen dynamic instruction index, and classifies the divergence
//! against the golden run ([`Outcome`]).
//!
//! Replays do not re-execute from reset: the runner takes a ladder of
//! [`nfp_sim::Checkpoint`]s along the golden path and rewinds to the
//! nearest one at or before each injection point, so a campaign costs
//! roughly `N × (golden / 2·checkpoints + survival tail)` instructions
//! instead of `N × golden`.
//!
//! Campaigns run with [`TrapPolicy::Recover`]: window overflow and
//! underflow spill and fill through the bare-metal handler model, and
//! misaligned accesses injected by faults are skipped, so only
//! genuinely unrecoverable corruption classifies as [`Outcome::Trap`].
//! A [`Watchdog`] bounds every replay so control-flow corruption that
//! spins forever classifies as [`Outcome::Hang`] instead of wedging
//! the harness. Everything is deterministic for a fixed seed: same
//! seed, same kernel, same counts — the basis for the campaign
//! regression test.

use crate::evaluation::Mode;
use nfp_core::{NfpError, Outcome, VulnerabilityReport};
use nfp_sim::fault::{inject, plan, undo};
use nfp_sim::machine::TrapPolicy;
use nfp_sim::{
    Checkpoint, Dispatch, Fault, FaultSpace, FaultTarget, Machine, RunResult, SimError, Watchdog,
};
use nfp_sparc::Category;
use nfp_workloads::{machine_for, Kernel, KERNEL_BUDGET};
use std::time::Duration;

/// Campaign parameters.
#[derive(Debug, Clone)]
pub struct CampaignConfig {
    /// Number of fault injections.
    pub injections: usize,
    /// Seed for the fault plan (target and injection-point sampling).
    pub seed: u64,
    /// Number of checkpoints taken along the golden run.
    pub checkpoints: usize,
    /// Optional per-replay wall-clock deadline. `None` (the default)
    /// keeps campaigns fully deterministic; the instruction-budget
    /// watchdog already bounds every replay.
    pub wall: Option<Duration>,
    /// Execution dispatch strategy for the golden run and every
    /// replay. Campaign results are bit-identical across all modes (a
    /// regression test asserts it); this exists to measure the
    /// dispatch speedups and to isolate suspected batching bugs by
    /// dropping back to [`Dispatch::Step`].
    pub dispatch: Dispatch,
    /// Watchdog escalation factor. A replay first runs under the soft
    /// instruction budget (`2·golden + 10000` minus the injection
    /// point); if that expires, the watchdog escalates once, granting
    /// `escalation − 1` further soft budgets before classifying the
    /// replay as [`Outcome::Hang`]. `1` disables escalation and
    /// restores the old single hard cutoff. Wall-clock expiry never
    /// escalates: a deadline is a deadline.
    pub escalation: u32,
}

impl Default for CampaignConfig {
    fn default() -> Self {
        CampaignConfig {
            injections: 1000,
            seed: 0x5eed_f417,
            checkpoints: 16,
            wall: None,
            dispatch: Dispatch::default(),
            escalation: 2,
        }
    }
}

/// One injection and its classified outcome.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InjectionRecord {
    /// What was flipped, and when.
    pub fault: Fault,
    /// Table I category of the instruction at the injection point (for
    /// code faults, of the corrupted instruction itself); `None` when
    /// the injection point sat outside the predecoded image.
    pub category: Option<Category>,
    /// Classification against the golden run.
    pub outcome: Outcome,
}

/// Everything a campaign learns about one kernel variant.
#[derive(Debug, Clone)]
pub struct CampaignResult {
    /// `<kernel>_<float|fixed>`.
    pub name: String,
    /// Dynamic instruction count of the fault-free run.
    pub golden_instret: u64,
    /// Traps absorbed by the recovery model during the golden run.
    pub golden_recovered_traps: u64,
    /// Per-category vulnerability tallies.
    pub report: VulnerabilityReport,
    /// Every injection in plan order.
    pub records: Vec<InjectionRecord>,
}

impl CampaignResult {
    /// Outcome counts over the whole campaign.
    pub fn outcome_totals(&self) -> nfp_core::OutcomeCounts {
        self.report.totals()
    }
}

/// The golden run's observable outputs, used for classification.
#[derive(Debug, Clone, PartialEq, Eq)]
struct GoldenOutput {
    exit_code: u32,
    words: Vec<u32>,
    text: String,
}

/// A campaign-ready machine: positioned at reset, recovery enabled,
/// with its checkpoint ladder and the golden reference attached.
/// `pub(crate)` so the [`crate::supervisor`] worker pool can replay
/// individual plan entries and sabotage replays for its test hooks.
pub(crate) struct CampaignRig {
    pub(crate) machine: Machine,
    checkpoints: Vec<Checkpoint>,
    golden: GoldenOutput,
    pub(crate) golden_instret: u64,
    golden_recovered_traps: u64,
    pub(crate) budget: u64,
    escalation: u32,
}

/// Merges possibly-overlapping address ranges into a sorted disjoint
/// set (fault-space weights count each RAM word once).
fn merge_ranges(mut ranges: Vec<(u32, u32)>) -> Vec<(u32, u32)> {
    ranges.sort_unstable();
    let mut merged: Vec<(u32, u32)> = Vec::with_capacity(ranges.len());
    for (start, end) in ranges {
        match merged.last_mut() {
            Some((_, last_end)) if start <= *last_end => *last_end = (*last_end).max(end),
            _ => merged.push((start, end)),
        }
    }
    merged
}

fn fresh_machine(kernel: &Kernel, mode: Mode, cfg: &CampaignConfig) -> Result<Machine, NfpError> {
    let mut m = machine_for(kernel, mode.float_mode())?;
    m.set_trap_policy(TrapPolicy::Recover);
    m.set_dispatch(cfg.dispatch);
    Ok(m)
}

impl CampaignRig {
    /// Runs the golden pass and builds the checkpoint ladder. Returns
    /// the rig plus the fault space learned from the golden run (code
    /// extent and every RAM range the kernel loads or touches).
    pub(crate) fn prepare(
        kernel: &Kernel,
        mode: Mode,
        cfg: &CampaignConfig,
    ) -> Result<(Self, FaultSpace), NfpError> {
        // Golden pass: learn length, outputs, and the RAM footprint.
        let mut probe = fresh_machine(kernel, mode, cfg)?;
        let run = probe.run(KERNEL_BUDGET)?;
        if run.exit_code != 0 {
            return Err(NfpError::KernelFailed {
                kernel: format!("{}_{}", kernel.name, mode.suffix()),
                exit_code: run.exit_code,
            });
        }
        if run.words != kernel.expected_words {
            return Err(NfpError::OutputMismatch {
                kernel: format!("{}_{}", kernel.name, mode.suffix()),
            });
        }
        let golden_instret = run.instret;
        let mut ram_ranges = probe.bus.pristine_ranges();
        ram_ranges.extend(probe.bus.dirty_ranges());
        let space = FaultSpace {
            max_instret: golden_instret.saturating_sub(1),
            code_len: probe.code_len() as u32,
            ram_ranges: merge_ranges(ram_ranges),
            fp: probe.config().fpu_enabled,
        };

        // Checkpoint ladder along a fresh replay of the same path.
        let mut machine = fresh_machine(kernel, mode, cfg)?;
        let steps = cfg.checkpoints.max(1) as u64;
        let mut checkpoints = Vec::with_capacity(cfg.checkpoints);
        for i in 0..steps {
            machine.run_until(golden_instret * i / steps)?;
            checkpoints.push(machine.checkpoint());
        }

        let rig = CampaignRig {
            machine,
            checkpoints,
            golden: GoldenOutput {
                exit_code: run.exit_code,
                words: run.words,
                text: run.text,
            },
            golden_instret,
            golden_recovered_traps: run.recovered_traps,
            // Soft replay ceiling: twice the golden length plus
            // slack. The watchdog may escalate past it once (see
            // [`CampaignConfig::escalation`]) before declaring a hang.
            budget: 2 * golden_instret + 10_000,
            escalation: cfg.escalation.max(1),
        };
        Ok((rig, space))
    }

    /// Rewinds to the nearest checkpoint at or before `at` and replays
    /// up to it.
    pub(crate) fn seek(&mut self, at: u64) -> Result<(), NfpError> {
        let cp = self
            .checkpoints
            .iter()
            .rev()
            .find(|cp| cp.instret() <= at)
            .ok_or(NfpError::Empty {
                what: "checkpoint ladder",
            })?;
        self.machine.restore(cp);
        self.machine.run_until(at)?;
        Ok(())
    }

    /// Runs the fault-injected machine under the escalating watchdog:
    /// one soft instruction budget, then (if the soft budget — not a
    /// wall deadline — expired) up to `escalation − 1` more, then
    /// expiry stands and the replay is a hang. The wall deadline spans
    /// the *whole* escalating run, not one tier: escalation grants a
    /// hung replay more instructions, never more time.
    pub(crate) fn run_escalating(
        &mut self,
        soft: u64,
        wall: Option<Duration>,
    ) -> Result<RunResult, SimError> {
        let deadline = wall.map(|d| std::time::Instant::now() + d);
        let mut tier = 0;
        loop {
            let before = self.machine.instret();
            let run = self.machine.run_watchdog(&Watchdog {
                max_instrs: soft,
                wall: deadline.map(|d| d.saturating_duration_since(std::time::Instant::now())),
            });
            tier += 1;
            match run {
                Err(SimError::WatchdogExpired { .. })
                    // Wall expiry retires fewer than `soft` instructions;
                    // escalating would hand a hung replay a fresh
                    // deadline, so only budget expiry escalates.
                    if tier < self.escalation
                        && self.machine.instret().wrapping_sub(before) >= soft => {}
                other => return other,
            }
        }
    }

    /// Performs one injection and classifies the divergence.
    pub(crate) fn run_one(
        &mut self,
        fault: &Fault,
        wall: Option<Duration>,
    ) -> Result<InjectionRecord, NfpError> {
        self.seek(fault.at)?;
        // Attribute the injection to the instruction about to execute;
        // code faults are attributed to the instruction they corrupt.
        let category = match fault.target {
            FaultTarget::Code { index, .. } => self.machine.code_category(index as usize),
            _ => self.machine.next_category(),
        };
        let armed = inject(&mut self.machine, fault)?;
        let soft = self.budget.saturating_sub(fault.at).max(1);
        let run = self.run_escalating(soft, wall);
        undo(&mut self.machine, &armed)?;
        let outcome = match run {
            Ok(r) => {
                let matches = r.exit_code == self.golden.exit_code
                    && r.words == self.golden.words
                    && r.text == self.golden.text;
                if matches {
                    Outcome::Masked
                } else {
                    Outcome::Sdc
                }
            }
            Err(SimError::Trap(_)) | Err(SimError::UnknownSoftTrap { .. }) => Outcome::Trap,
            Err(SimError::WatchdogExpired { .. }) => Outcome::Hang,
            Err(e) => return Err(e.into()),
        };
        Ok(InjectionRecord {
            fault: *fault,
            category,
            outcome,
        })
    }
}

/// Runs a fault-injection campaign over one kernel variant.
pub fn run_campaign(
    kernel: &Kernel,
    mode: Mode,
    cfg: &CampaignConfig,
) -> Result<CampaignResult, NfpError> {
    let (mut rig, space) = CampaignRig::prepare(kernel, mode, cfg)?;
    let faults = plan(&space, cfg.injections, cfg.seed);
    let mut records = Vec::with_capacity(faults.len());
    for fault in &faults {
        records.push(rig.run_one(fault, cfg.wall)?);
    }
    Ok(assemble(kernel, mode, &rig, records))
}

/// Like [`run_campaign`] but sweeping injections across worker threads.
/// Each worker replays the golden run on its own machine and processes
/// a contiguous chunk of the (deterministic) fault plan; the merged
/// result is identical to the sequential campaign's.
pub fn run_campaign_parallel(
    kernel: &Kernel,
    mode: Mode,
    cfg: &CampaignConfig,
) -> Result<CampaignResult, NfpError> {
    use std::sync::Mutex;
    type ChunkSlot = Mutex<Option<Result<Vec<InjectionRecord>, NfpError>>>;

    let (rig, space) = CampaignRig::prepare(kernel, mode, cfg)?;
    let faults = plan(&space, cfg.injections, cfg.seed);
    let workers = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
        .min(faults.len().max(1));
    let chunk_len = faults.len().div_ceil(workers.max(1)).max(1);
    let chunks: Vec<&[Fault]> = faults.chunks(chunk_len).collect();
    let slots: Vec<ChunkSlot> = chunks.iter().map(|_| Mutex::new(None)).collect();

    std::thread::scope(|scope| {
        for (slot, chunk) in slots.iter().zip(&chunks) {
            scope.spawn(move || {
                let result = (|| {
                    let (mut rig, _) = CampaignRig::prepare(kernel, mode, cfg)?;
                    chunk.iter().map(|f| rig.run_one(f, cfg.wall)).collect()
                })();
                *slot
                    .lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner) = Some(result);
            });
        }
    });

    let mut records = Vec::with_capacity(faults.len());
    for (i, slot) in slots.into_iter().enumerate() {
        let chunk = slot
            .into_inner()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .ok_or_else(|| NfpError::WorkerLost {
                job: format!(
                    "campaign chunk {i} of {}_{} ({} injections)",
                    kernel.name,
                    mode.suffix(),
                    chunks.get(i).map_or(0, |c| c.len())
                ),
            })??;
        records.extend(chunk);
    }
    Ok(assemble(kernel, mode, &rig, records))
}

pub(crate) fn assemble(
    kernel: &Kernel,
    mode: Mode,
    rig: &CampaignRig,
    records: Vec<InjectionRecord>,
) -> CampaignResult {
    let mut report = VulnerabilityReport::new();
    for r in &records {
        report.record(r.category, r.outcome);
    }
    CampaignResult {
        name: format!("{}_{}", kernel.name, mode.suffix()),
        golden_instret: rig.golden_instret,
        golden_recovered_traps: rig.golden_recovered_traps,
        report,
        records,
    }
}

/// Renders a campaign as a vulnerability table with a header line.
pub fn report_campaign(result: &CampaignResult) -> String {
    use std::fmt::Write;
    let totals = result.outcome_totals();
    let mut out = String::new();
    let _ = writeln!(
        out,
        "SEU CAMPAIGN — {} ({} injections over {} golden instructions)",
        result.name,
        totals.total(),
        result.golden_instret
    );
    let _ = writeln!(
        out,
        "overall vulnerability {:.1}% (SDC {}, trap {}, hang {})",
        totals.vulnerability() * 100.0,
        totals.get(Outcome::Sdc),
        totals.get(Outcome::Trap),
        totals.get(Outcome::Hang),
    );
    out.push('\n');
    out.push_str(&result.report.render());
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use nfp_workloads::Preset;

    #[test]
    fn merge_ranges_coalesces_overlaps() {
        let merged = merge_ranges(vec![(40, 50), (0, 10), (8, 20), (20, 30)]);
        assert_eq!(merged, vec![(0, 30), (40, 50)]);
        assert!(merge_ranges(Vec::new()).is_empty());
    }

    #[test]
    fn small_campaign_is_deterministic() {
        let kernels = nfp_workloads::fse_kernels(&Preset::quick()).expect("kernels");
        let cfg = CampaignConfig {
            injections: 40,
            ..CampaignConfig::default()
        };
        let a = run_campaign(&kernels[0], Mode::Float, &cfg).unwrap();
        let b = run_campaign(&kernels[0], Mode::Float, &cfg).unwrap();
        assert_eq!(a.report, b.report);
        assert_eq!(a.records.len(), 40);
        assert_eq!(a.golden_instret, b.golden_instret);
        for (x, y) in a.records.iter().zip(&b.records) {
            assert_eq!(x.outcome, y.outcome);
            assert_eq!(x.fault.at, y.fault.at);
        }
    }

    #[test]
    fn campaign_outcomes_identical_across_dispatch_modes() {
        // The execution-mode contract extended to a full seeded
        // campaign: golden run, checkpoint ladder, every injected
        // replay, and the classified outcomes must not depend on how
        // execution is dispatched — per-instruction stepping, block
        // batching, threaded code, or superblock traces.
        let kernels = nfp_workloads::fse_kernels(&Preset::quick()).expect("kernels");
        let base = CampaignConfig {
            injections: 30,
            seed: 0xb10c,
            checkpoints: 4,
            ..CampaignConfig::default()
        };
        let step = run_campaign(
            &kernels[0],
            Mode::Float,
            &CampaignConfig {
                dispatch: Dispatch::Step,
                ..base.clone()
            },
        )
        .unwrap();
        for dispatch in [Dispatch::Block, Dispatch::Threaded, Dispatch::Traced] {
            let fast = run_campaign(
                &kernels[0],
                Mode::Float,
                &CampaignConfig {
                    dispatch,
                    ..base.clone()
                },
            )
            .unwrap();
            assert_eq!(fast.golden_instret, step.golden_instret, "{dispatch}");
            assert_eq!(fast.report, step.report, "{dispatch}");
            for (x, y) in fast.records.iter().zip(&step.records) {
                assert_eq!(x.fault, y.fault, "{dispatch}");
                assert_eq!(x.outcome, y.outcome, "{dispatch}");
                assert_eq!(x.category, y.category, "{dispatch}");
            }
        }
    }

    #[test]
    fn parallel_campaign_matches_sequential() {
        let kernels = nfp_workloads::fse_kernels(&Preset::quick()).expect("kernels");
        let cfg = CampaignConfig {
            injections: 24,
            seed: 7,
            ..CampaignConfig::default()
        };
        let seq = run_campaign(&kernels[0], Mode::Float, &cfg).unwrap();
        let par = run_campaign_parallel(&kernels[0], Mode::Float, &cfg).unwrap();
        assert_eq!(seq.report, par.report);
        assert_eq!(seq.records.len(), par.records.len());
        for (x, y) in seq.records.iter().zip(&par.records) {
            assert_eq!(x.outcome, y.outcome);
        }
    }
}
