//! Renders every table and figure of the paper as text, side by side
//! with the paper's published numbers where applicable.

use crate::evaluation::{Evaluation, KernelResult, Mode};
use nfp_core::{
    calibrate, calibrate_class, paper_table1, Coarse, ErrorSummary, Fine, NfpError, Paper,
};
use nfp_sim::MachineConfig;
use nfp_testbed::{AreaModel, HwObserver, Testbed};
use nfp_workloads::{machine_for, Kernel, KERNEL_BUDGET};
use std::fmt::Write;

/// Table I: calibrated specific times and energies vs the paper's,
/// with the automated consistency check (paper §V) appended.
pub fn report_table1(eval: &Evaluation) -> String {
    let paper = paper_table1();
    let mut out = String::new();
    writeln!(out, "TABLE I — instruction categories and specific costs").unwrap();
    writeln!(
        out,
        "{:<22} {:>10} {:>10}   {:>10} {:>10}",
        "Category", "t_c [ns]", "paper", "e_c [nJ]", "paper"
    )
    .unwrap();
    for (i, detail) in eval.calibration.details.iter().enumerate() {
        writeln!(
            out,
            "{:<22} {:>10.1} {:>10.0}   {:>10.1} {:>10.0}",
            detail.class,
            eval.calibration.model.time_s[i] * 1e9,
            paper.time_s[i] * 1e9,
            eval.calibration.model.energy_j[i] * 1e9,
            paper.energy_j[i] * 1e9,
        )
        .unwrap();
    }
    let findings = nfp_core::check_structure(&eval.calibration);
    match nfp_core::validate(&eval.testbed, &eval.calibration, 0.10) {
        Ok((validation, warnings)) => {
            writeln!(
                out,
                "
consistency: {} structural finding(s); mixed-kernel residuals time {:+.2}%, energy {:+.2}%",
                findings.len(),
                validation.time_residual * 100.0,
                validation.energy_residual * 100.0
            )
            .unwrap();
            for f in findings.iter().chain(&warnings) {
                writeln!(out, "  {f}").unwrap();
            }
        }
        Err(e) => writeln!(
            out,
            "
consistency validation failed: {e}"
        )
        .unwrap(),
    }
    out
}

/// Fig. 4: measured vs estimated energy and time for showcase kernels
/// (FSE float/fixed and HEVC float/fixed, like the paper's bars).
pub fn report_fig4(results: &[KernelResult]) -> String {
    let mut out = String::new();
    writeln!(out, "FIG. 4 — measurement vs estimation, showcase kernels").unwrap();
    writeln!(
        out,
        "{:<34} {:>11} {:>11} {:>8}   {:>9} {:>9} {:>8}",
        "Kernel", "E_meas[mJ]", "E_est[mJ]", "err", "T_meas[s]", "T_est[s]", "err"
    )
    .unwrap();
    for r in results {
        writeln!(
            out,
            "{:<34} {:>11.2} {:>11.2} {:>7.2}%   {:>9.3} {:>9.3} {:>7.2}%",
            r.name,
            r.measured.energy_j * 1e3,
            r.estimate.energy_j * 1e3,
            r.energy_error() * 100.0,
            r.measured.time_s,
            r.estimate.time_s,
            r.time_error() * 100.0,
        )
        .unwrap();
    }
    out
}

/// Table III: mean and maximum absolute estimation errors.
pub fn report_table3(results: &[KernelResult]) -> String {
    let e_summary =
        ErrorSummary::from_errors(&results.iter().map(|r| r.energy_error()).collect::<Vec<_>>());
    let t_summary =
        ErrorSummary::from_errors(&results.iter().map(|r| r.time_error()).collect::<Vec<_>>());
    let (Some(e_summary), Some(t_summary)) = (e_summary, t_summary) else {
        return "TABLE III — no kernel results to summarise\n".to_string();
    };
    let mut out = String::new();
    writeln!(
        out,
        "TABLE III — estimation errors over M = {} kernels",
        results.len()
    )
    .unwrap();
    writeln!(out, "{:<28} {:>10} {:>10}", "", "Energy", "Time").unwrap();
    writeln!(
        out,
        "{:<28} {:>9.2}% {:>9.2}%   (paper: 2.68% / 2.72%)",
        "Mean absolute error",
        e_summary.mean_abs * 100.0,
        t_summary.mean_abs * 100.0
    )
    .unwrap();
    writeln!(
        out,
        "{:<28} {:>9.2}% {:>9.2}%   (paper: 6.32% / 6.95%)",
        "Maximum absolute error",
        e_summary.max_abs * 100.0,
        t_summary.max_abs * 100.0
    )
    .unwrap();
    out
}

/// Table IV: non-functional property changes when introducing an FPU.
pub fn report_table4(results: &[KernelResult]) -> String {
    let tradeoff_for = |prefix: &str| {
        let mut without = Vec::new();
        let mut with = Vec::new();
        for r in results {
            if !r.base_name.starts_with(prefix) {
                continue;
            }
            let nfp = nfp_core::KernelNfp {
                time_s: r.measured.time_s,
                energy_j: r.measured.energy_j,
            };
            match r.mode {
                Mode::Fixed => without.push((r.base_name.clone(), nfp)),
                Mode::Float => with.push((r.base_name.clone(), nfp)),
            }
        }
        without.sort_by(|a, b| a.0.cmp(&b.0));
        with.sort_by(|a, b| a.0.cmp(&b.0));
        assert_eq!(
            without.iter().map(|p| &p.0).collect::<Vec<_>>(),
            with.iter().map(|p| &p.0).collect::<Vec<_>>(),
            "paired kernel sets"
        );
        nfp_core::fpu_tradeoff(
            &without.into_iter().map(|p| p.1).collect::<Vec<_>>(),
            &with.into_iter().map(|p| p.1).collect::<Vec<_>>(),
        )
    };
    let fse = tradeoff_for("fse");
    let hevc = tradeoff_for("hevc");
    let base_le = AreaModel::baseline().logical_elements();
    let fpu_le = AreaModel::with_fpu().logical_elements();
    let mut out = String::new();
    writeln!(out, "TABLE IV — change when introducing an FPU").unwrap();
    writeln!(out, "{:<22} {:>12} {:>16}", "", "FSE", "HEVC Decoding").unwrap();
    writeln!(
        out,
        "{:<22} {:>11.1}% {:>15.1}%   (paper: -92.6% / -42.9%)",
        "Energy consumption",
        fse.energy_change * 100.0,
        hevc.energy_change * 100.0
    )
    .unwrap();
    writeln!(
        out,
        "{:<22} {:>11.1}% {:>15.1}%   (paper: -92.8% / -43.5%)",
        "Processing time",
        fse.time_change * 100.0,
        hevc.time_change * 100.0
    )
    .unwrap();
    writeln!(
        out,
        "{:<22} {:>11.1}% {:>15.1}%   (paper: +109% / +109%; {} -> {} LEs)",
        "# logical elements",
        fse.area_change * 100.0,
        hevc.area_change * 100.0,
        base_le,
        fpu_le,
    )
    .unwrap();
    out
}

/// One point of the Fig. 1 landscape.
#[derive(Debug, Clone)]
pub struct Fig1Point {
    /// Simulator class.
    pub name: &'static str,
    /// Simulated instructions per host second.
    pub mips: f64,
    /// NFP estimation error of this layer (None = no NFP at all).
    pub accuracy: Option<f64>,
}

/// Fig. 1: simulation speed vs non-functional-property accuracy for
/// three simulator classes run on the same kernel: the detailed
/// hardware model ("CAS-like", defines ground truth), the ISS with the
/// mechanistic model (this paper), and the bare ISS (functional only).
pub fn report_fig1(
    eval: &Evaluation,
    kernel: &Kernel,
) -> Result<(String, Vec<Fig1Point>), NfpError> {
    let mode = Mode::Float;
    let run_timed = |count: bool, detailed: bool| -> Result<(f64, u64), NfpError> {
        let mut machine = machine_for(kernel, mode.float_mode())?;
        if !count {
            machine = {
                let program = nfp_workloads::program(kernel.workload, mode.float_mode())?;
                let mut m = nfp_sim::Machine::new(MachineConfig {
                    count_categories: false,
                    ..MachineConfig::default()
                });
                m.load_image(program.base, &program.words)?;
                m.bus
                    .write_bytes(nfp_workloads::INPUT_BASE, &kernel.input)
                    .map_err(nfp_sim::SimError::from)?;
                m
            };
        }
        let start = std::time::Instant::now();
        let instret = if detailed {
            let mut obs = HwObserver::new(eval.testbed.hw.clone());
            machine.run_observed(KERNEL_BUDGET, &mut obs)?.instret
        } else {
            machine.run(KERNEL_BUDGET)?.instret
        };
        let dt = start.elapsed().as_secs_f64().max(1e-9);
        Ok((instret as f64 / dt, instret))
    };

    // NFP accuracy of the mechanistic layer on this kernel.
    let result = eval.run_kernel(kernel, mode)?;
    let model_err = result.time_error().abs().max(result.energy_error().abs());

    let (mips_detailed, _) = run_timed(false, true)?;
    let (mips_model, _) = run_timed(true, false)?;
    let (mips_bare, _) = run_timed(false, false)?;

    let points = vec![
        Fig1Point {
            name: "detailed HW model (CAS-like)",
            mips: mips_detailed,
            accuracy: Some(0.0),
        },
        Fig1Point {
            name: "ISS + mechanistic model",
            mips: mips_model,
            accuracy: Some(model_err),
        },
        Fig1Point {
            name: "bare ISS (functional only)",
            mips: mips_bare,
            accuracy: None,
        },
    ];
    let mut out = String::new();
    writeln!(
        out,
        "FIG. 1 — simulation speed vs NFP accuracy ({})",
        kernel.name
    )
    .unwrap();
    writeln!(
        out,
        "{:<32} {:>14} {:>18}",
        "Simulator", "speed [MIPS]", "NFP error"
    )
    .unwrap();
    for p in &points {
        let acc = match p.accuracy {
            Some(e) => format!("{:.2}%", e * 100.0),
            None => "n/a (no NFP)".to_string(),
        };
        writeln!(out, "{:<32} {:>14.1} {:>18}", p.name, p.mips / 1e6, acc).unwrap();
    }
    Ok((out, points))
}

/// Ablation E6: estimation error as a function of category
/// granularity (1 class / the paper's 9 / 11 with mul+div split).
pub fn report_ablation_categories(
    eval: &Evaluation,
    kernels: &[Kernel],
) -> Result<String, NfpError> {
    let mut out = String::new();
    writeln!(
        out,
        "ABLATION — model granularity (mean |error| over kernels)"
    )
    .unwrap();
    writeln!(
        out,
        "{:<28} {:>8} {:>10} {:>10}",
        "Model", "classes", "energy", "time"
    )
    .unwrap();

    macro_rules! run_with {
        ($name:expr, $classifier:expr) => {{
            let classifier = $classifier;
            let cal = calibrate(&eval.testbed, &classifier, 0xcafe)?;
            let mut e_errs = Vec::new();
            let mut t_errs = Vec::new();
            for kernel in kernels {
                for mode in Mode::BOTH {
                    let r = eval.run_kernel_with(kernel, mode, &classifier, &cal.model)?;
                    e_errs.push(r.energy_error());
                    t_errs.push(r.time_error());
                }
            }
            let e = ErrorSummary::from_errors(&e_errs).ok_or(NfpError::Empty {
                what: "ablation kernel errors",
            })?;
            let t = ErrorSummary::from_errors(&t_errs).ok_or(NfpError::Empty {
                what: "ablation kernel errors",
            })?;
            writeln!(
                out,
                "{:<28} {:>8} {:>9.2}% {:>9.2}%",
                $name,
                classifier_class_count(&classifier),
                e.mean_abs * 100.0,
                t.mean_abs * 100.0
            )
            .unwrap();
        }};
    }
    fn classifier_class_count<C: nfp_core::Classifier>(c: &C) -> usize {
        c.class_count()
    }

    run_with!("single class (coarse)", Coarse);
    run_with!("Table I categories (paper)", Paper);
    run_with!("+ int mul/div split (fine)", Fine);
    Ok(out)
}

/// Ablation E7: calibration sensitivity — derived specific time of the
/// integer-arithmetic class as a function of calibration loop length,
/// and of the power-meter noise level.
pub fn report_ablation_calibration(testbed: &Testbed) -> Result<String, NfpError> {
    let mut out = String::new();
    writeln!(
        out,
        "ABLATION — calibration sensitivity (Integer Arithmetic)"
    )
    .unwrap();
    writeln!(
        out,
        "{:<26} {:>12} {:>12}",
        "Loop iterations", "t_c [ns]", "e_c [nJ]"
    )
    .unwrap();
    for iters in [1_000u32, 10_000, 100_000, 400_000] {
        let cal = calibrate_class(testbed, "Integer Arithmetic", iters, 5)?;
        writeln!(
            out,
            "{:<26} {:>12.2} {:>12.2}",
            iters,
            cal.time_s * 1e9,
            cal.energy_j * 1e9
        )
        .unwrap();
    }
    writeln!(out).unwrap();
    writeln!(
        out,
        "{:<26} {:>12} {:>12}",
        "Meter noise sigma", "t_c [ns]", "e_c [nJ]"
    )
    .unwrap();
    for sigma in [0.0, 0.02, 0.10, 0.30] {
        let mut tb = testbed.clone();
        tb.meter.sample_sigma = sigma;
        let cal = calibrate_class(&tb, "Integer Arithmetic", 200_000, 6)?;
        writeln!(
            out,
            "{:<26} {:>12.2} {:>12.2}",
            format!("{sigma:.2}"),
            cal.time_s * 1e9,
            cal.energy_j * 1e9
        )
        .unwrap();
    }
    Ok(out)
}

/// Extension E8: what happens to the constant-cost model when the core
/// gains a data cache (the paper's stated future work). Calibrates and
/// evaluates on a cacheless and on a cached board; with the cache,
/// per-access memory cost becomes history-dependent and the Eq. 1
/// assumption breaks down visibly.
pub fn report_cache_extension(kernels: &[Kernel]) -> Result<String, NfpError> {
    use nfp_testbed::CacheConfig;
    let mut out = String::new();
    writeln!(
        out,
        "EXTENSION E8 — cache vs the constant-cost model (mean |error|)"
    )
    .unwrap();
    writeln!(
        out,
        "{:<30} {:>10} {:>10}",
        "Board configuration", "energy", "time"
    )
    .unwrap();
    for (name, testbed) in [
        ("cacheless (paper's config)", Testbed::new()),
        (
            "with 4 KiB D-cache",
            Testbed::with_cache(CacheConfig::default()),
        ),
    ] {
        let calibration = calibrate(&testbed, &Paper, 0xcafe)?;
        let eval = Evaluation {
            testbed,
            calibration,
        };
        let mut e_errs = Vec::new();
        let mut t_errs = Vec::new();
        for kernel in kernels {
            for mode in Mode::BOTH {
                let r = eval.run_kernel(kernel, mode)?;
                e_errs.push(r.energy_error());
                t_errs.push(r.time_error());
            }
        }
        let e = nfp_core::ErrorSummary::from_errors(&e_errs).ok_or(NfpError::Empty {
            what: "cache-extension kernel errors",
        })?;
        let t = nfp_core::ErrorSummary::from_errors(&t_errs).ok_or(NfpError::Empty {
            what: "cache-extension kernel errors",
        })?;
        writeln!(
            out,
            "{:<30} {:>9.2}% {:>9.2}%",
            name,
            e.mean_abs * 100.0,
            t.mean_abs * 100.0
        )
        .unwrap();
    }
    writeln!(
        out,
        "\nWith a cache, calibration loops always hit while real workloads mix\n\
         hits and misses: a single t_c(Memory Load) can no longer represent\n\
         both, which is exactly why the paper's first model targets a\n\
         cacheless core and defers caches to future work."
    )
    .unwrap();
    Ok(out)
}

/// Machinery counters from a supervised or sharded campaign, rendered
/// by [`report_campaign_footer`]. `repro campaign` prints the footer
/// to **stderr** after the stdout report so that reports stay
/// byte-identical across isolation and sharding configurations.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CampaignFooter {
    /// Worker processes a supervisor SIGKILLed (deadline or
    /// heartbeat-silence).
    pub kills: usize,
    /// Worker processes respawned after a kill, death, or failed
    /// handshake.
    pub respawns: usize,
    /// Shard count the campaign ran with (0 or 1: not sharded).
    pub shards: u32,
    /// Shard attempts re-dispatched after a lost worker, torn tail,
    /// or checksum failure.
    pub shard_retries: usize,
    /// Straggling shards speculatively duplicated.
    pub speculated: usize,
    /// Injection ranges absent from the merged result (non-empty only
    /// for `--allow-partial` runs).
    pub missing_ranges: Vec<(u64, u64)>,
    /// Worker reconnections the coordinator observed during a remote
    /// campaign (joins carrying a nonzero reconnect ordinal).
    pub reconnects: usize,
    /// Shard leases revoked from silent or overrunning remote peers.
    pub leases_revoked: usize,
    /// Frames rejected as corrupt, out-of-protocol, or checksum-failed.
    pub frames_rejected: usize,
    /// Remote peers retired after a violation, silence, or death.
    pub peers_retired: usize,
    /// Injection ranges sampled for a quorum audit (re-dispatched to a
    /// disjoint worker and compared stream against stream).
    pub ranges_audited: usize,
    /// Audit comparisons that agreed — either two disjoint workers
    /// matched, or a held-back stream matched the local truth.
    pub audits_passed: usize,
    /// Workers convicted of returning falsified records by the trusted
    /// local tie-breaker, and blacklisted.
    pub workers_convicted: usize,
    /// Previously-accepted ranges invalidated and re-dispatched because
    /// their producer was later convicted.
    pub ranges_invalidated: usize,
    /// Golden-run dispatch-path counters, when the campaign rig is in
    /// hand (remote campaigns and future local plumbing).
    pub dispatch: Option<nfp_sim::DispatchStats>,
    /// Result-cache hits over the coordinator's lifetime so far
    /// (coordinator-served campaigns only; zero elsewhere).
    pub cache_hits: usize,
    /// Result-cache misses over the coordinator's lifetime so far.
    pub cache_misses: usize,
    /// Identical in-flight submissions deduplicated into one live
    /// campaign instead of being re-simulated.
    pub submits_deduped: usize,
    /// Clients that re-attached to a journal-resumed campaign.
    pub sessions_resumed: usize,
    /// Times the coordinator restarted over its service journal.
    pub restarts: usize,
}

impl CampaignFooter {
    /// Counters of a plain supervised (unsharded) run.
    pub fn from_supervisor(outcome: &crate::supervisor::SupervisorOutcome) -> Self {
        CampaignFooter {
            kills: outcome.kills,
            respawns: outcome.respawns,
            dispatch: Some(outcome.dispatch),
            ..CampaignFooter::default()
        }
    }

    /// Counters of a sharded orchestrator run.
    pub fn from_sharded(outcome: &crate::shards::ShardOutcome) -> Self {
        CampaignFooter {
            kills: outcome.kills,
            respawns: outcome.respawns,
            shards: outcome.shards,
            shard_retries: outcome.shard_retries,
            speculated: outcome.speculated,
            missing_ranges: outcome.missing_ranges.clone(),
            dispatch: Some(outcome.dispatch),
            ..CampaignFooter::default()
        }
    }

    /// Counters of an offline `merge-journals` pass.
    pub fn from_merge(outcome: &crate::shards::MergeOutcome) -> Self {
        CampaignFooter {
            shards: outcome.shards,
            missing_ranges: outcome.missing_ranges.clone(),
            dispatch: Some(outcome.dispatch),
            ..CampaignFooter::default()
        }
    }
}

/// Renders the indented machinery footer. Empty when there is nothing
/// to report (no kills, no shards, no gaps), so callers can print the
/// result unconditionally.
///
/// The `worker pool:` line keeps its historical wording — CI greps
/// `worker pool: N SIGKILLed, M respawned` to prove the chaos jobs
/// actually exercised the kill path.
pub fn report_campaign_footer(footer: &CampaignFooter) -> String {
    let mut out = String::new();
    if footer.kills > 0 || footer.respawns > 0 {
        writeln!(
            out,
            "  worker pool: {} SIGKILLed, {} respawned",
            footer.kills, footer.respawns
        )
        .unwrap();
    }
    if footer.shards > 1 {
        writeln!(
            out,
            "  shards: {} merged, {} re-dispatched, {} speculated",
            footer.shards, footer.shard_retries, footer.speculated
        )
        .unwrap();
    }
    if footer.reconnects > 0
        || footer.leases_revoked > 0
        || footer.frames_rejected > 0
        || footer.peers_retired > 0
    {
        writeln!(
            out,
            "  net: {} reconnects, {} leases revoked, {} frames rejected, {} peers retired",
            footer.reconnects, footer.leases_revoked, footer.frames_rejected, footer.peers_retired
        )
        .unwrap();
    }
    if footer.ranges_audited > 0 || footer.workers_convicted > 0 {
        writeln!(
            out,
            "  audit: {} ranges audited, {} passed, {} workers convicted, {} ranges invalidated",
            footer.ranges_audited,
            footer.audits_passed,
            footer.workers_convicted,
            footer.ranges_invalidated
        )
        .unwrap();
    }
    if footer.cache_hits > 0
        || footer.cache_misses > 0
        || footer.submits_deduped > 0
        || footer.sessions_resumed > 0
        || footer.restarts > 0
    {
        writeln!(
            out,
            "  coordinator: {} cache hits, {} misses, {} submits deduplicated, {} sessions \
             resumed, {} restarts",
            footer.cache_hits,
            footer.cache_misses,
            footer.submits_deduped,
            footer.sessions_resumed,
            footer.restarts
        )
        .unwrap();
    }
    if !footer.missing_ranges.is_empty() {
        let uncovered: u64 = footer.missing_ranges.iter().map(|&(s, e)| e - s).sum();
        let ranges = footer
            .missing_ranges
            .iter()
            .map(|&(s, e)| format!("{s}..{e}"))
            .collect::<Vec<_>>()
            .join(", ");
        writeln!(
            out,
            "  missing ranges: {ranges} ({uncovered} injections uncovered)"
        )
        .unwrap();
    }
    if let Some(d) = footer.dispatch {
        if d.traced + d.batched + d.stepped > 0 {
            writeln!(
                out,
                "  golden dispatch: {} traced, {} batched, {} stepped",
                d.traced, d.batched, d.stepped
            )
            .unwrap();
        }
    }
    out
}

#[cfg(test)]
mod footer_tests {
    use super::*;

    #[test]
    fn empty_footer_renders_nothing() {
        assert_eq!(report_campaign_footer(&CampaignFooter::default()), "");
    }

    #[test]
    fn worker_pool_line_keeps_the_grepped_wording() {
        let footer = CampaignFooter {
            kills: 3,
            respawns: 4,
            ..CampaignFooter::default()
        };
        // CI's campaign-process job greps for exactly this shape.
        assert_eq!(
            report_campaign_footer(&footer),
            "  worker pool: 3 SIGKILLed, 4 respawned\n"
        );
    }

    #[test]
    fn sharded_partial_run_renders_every_counter() {
        let footer = CampaignFooter {
            kills: 1,
            respawns: 2,
            shards: 4,
            shard_retries: 3,
            speculated: 1,
            missing_ranges: vec![(0, 25), (75, 100)],
            ..CampaignFooter::default()
        };
        assert_eq!(
            report_campaign_footer(&footer),
            "  worker pool: 1 SIGKILLed, 2 respawned\n\
             \x20 shards: 4 merged, 3 re-dispatched, 1 speculated\n\
             \x20 missing ranges: 0..25, 75..100 (50 injections uncovered)\n"
        );
    }

    #[test]
    fn coordinator_counters_render_on_their_own_line() {
        let footer = CampaignFooter {
            cache_hits: 2,
            cache_misses: 5,
            submits_deduped: 1,
            sessions_resumed: 3,
            restarts: 2,
            ..CampaignFooter::default()
        };
        // The chaos CI job greps this line (`restarts`) to prove the
        // coordinator actually died and resumed mid-campaign.
        assert_eq!(
            report_campaign_footer(&footer),
            "  coordinator: 2 cache hits, 5 misses, 1 submits deduplicated, 3 sessions \
             resumed, 2 restarts\n"
        );
        // A coordinator that never cached, deduplicated, or restarted
        // stays silent — local campaigns keep their footer unchanged.
        assert_eq!(
            report_campaign_footer(&CampaignFooter {
                restarts: 1,
                ..CampaignFooter::default()
            }),
            "  coordinator: 0 cache hits, 0 misses, 0 submits deduplicated, 0 sessions \
             resumed, 1 restarts\n"
        );
    }

    #[test]
    fn remote_run_renders_net_and_dispatch_lines() {
        let footer = CampaignFooter {
            shards: 4,
            shard_retries: 1,
            reconnects: 2,
            leases_revoked: 1,
            frames_rejected: 3,
            peers_retired: 2,
            dispatch: Some(nfp_sim::DispatchStats {
                traced: 900,
                batched: 80,
                stepped: 20,
            }),
            ..CampaignFooter::default()
        };
        assert_eq!(
            report_campaign_footer(&footer),
            "  shards: 4 merged, 1 re-dispatched, 0 speculated\n\
             \x20 net: 2 reconnects, 1 leases revoked, 3 frames rejected, 2 peers retired\n\
             \x20 golden dispatch: 900 traced, 80 batched, 20 stepped\n"
        );
    }

    #[test]
    fn audit_counters_render_between_net_and_coordinator_lines() {
        let footer = CampaignFooter {
            reconnects: 1,
            ranges_audited: 3,
            audits_passed: 2,
            workers_convicted: 1,
            ranges_invalidated: 4,
            cache_misses: 1,
            ..CampaignFooter::default()
        };
        // CI's liar chaos job greps `workers convicted` on this line.
        assert_eq!(
            report_campaign_footer(&footer),
            "  net: 1 reconnects, 0 leases revoked, 0 frames rejected, 0 peers retired\n\
             \x20 audit: 3 ranges audited, 2 passed, 1 workers convicted, 4 ranges invalidated\n\
             \x20 coordinator: 0 cache hits, 1 misses, 0 submits deduplicated, 0 sessions \
             resumed, 0 restarts\n"
        );
        // A conviction renders even when sampling itself never fired
        // (the convict was caught by a held-back stream at fallback).
        assert_eq!(
            report_campaign_footer(&CampaignFooter {
                workers_convicted: 1,
                ..CampaignFooter::default()
            }),
            "  audit: 0 ranges audited, 0 passed, 1 workers convicted, 0 ranges invalidated\n"
        );
        // An unaudited, unconvicted campaign keeps its footer unchanged.
        assert_eq!(
            report_campaign_footer(&CampaignFooter {
                audits_passed: 0,
                ranges_invalidated: 0,
                ..CampaignFooter::default()
            }),
            ""
        );
    }

    #[test]
    fn all_zero_dispatch_stats_render_nothing() {
        let footer = CampaignFooter {
            dispatch: Some(nfp_sim::DispatchStats::default()),
            ..CampaignFooter::default()
        };
        assert_eq!(report_campaign_footer(&footer), "");
    }

    #[test]
    fn unsharded_run_omits_the_shard_line() {
        let footer = CampaignFooter {
            shards: 1,
            missing_ranges: vec![(10, 12)],
            ..CampaignFooter::default()
        };
        assert_eq!(
            report_campaign_footer(&footer),
            "  missing ranges: 10..12 (2 injections uncovered)\n"
        );
    }
}
