//! Constants shared by the native and mini-C FSE implementations: the
//! 16-point FFT twiddle factors, bit-reversal permutation, and the
//! algorithm parameters.
//!
//! Both implementations must use the *same* table values (the mini-C
//! source embeds them as literals printed with shortest-roundtrip
//! formatting, which parses back to identical bits), so extrapolation
//! results match bit-exactly.

/// FFT size: the 16×16 extrapolation area around each lost 8×8 block.
pub const N: usize = 16;

/// Support border around the lost block on each side.
pub const BORDER: usize = 4;

/// Isotropic weighting decay per Chebyshev-distance step.
pub const RHO: f64 = 0.8;

/// Orthogonality-deficiency compensation factor (Seiler & Kaup's γ).
pub const GAMMA: f64 = 0.5;

/// Default number of FSE iterations per block.
pub const ITERATIONS: usize = 32;

/// Twiddle factors `exp(-j·2πk/16)` for the forward FFT, k = 0..8.
pub fn twiddles() -> ([f64; 8], [f64; 8]) {
    let mut re = [0.0; 8];
    let mut im = [0.0; 8];
    for (k, (r, i)) in re.iter_mut().zip(im.iter_mut()).enumerate() {
        let theta = -2.0 * std::f64::consts::PI * k as f64 / N as f64;
        *r = theta.cos();
        *i = theta.sin();
    }
    (re, im)
}

/// Basis function tables: `cos(2πk/16)` and `sin(2πk/16)` for k = 0..16
/// (used when subtracting a selected basis function in the spatial
/// domain).
pub fn basis_tables() -> ([f64; 16], [f64; 16]) {
    let mut c = [0.0; 16];
    let mut s = [0.0; 16];
    for k in 0..16 {
        let theta = 2.0 * std::f64::consts::PI * k as f64 / N as f64;
        c[k] = theta.cos();
        s[k] = theta.sin();
    }
    (c, s)
}

/// 4-bit bit-reversal permutation for the radix-2 FFT.
pub fn bit_reverse16() -> [usize; 16] {
    let mut out = [0usize; 16];
    for (i, o) in out.iter_mut().enumerate() {
        let mut v = 0;
        for b in 0..4 {
            if i & (1 << b) != 0 {
                v |= 8 >> b;
            }
        }
        *o = v;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn twiddles_lie_on_unit_circle() {
        let (re, im) = twiddles();
        for k in 0..8 {
            let mag = re[k] * re[k] + im[k] * im[k];
            assert!((mag - 1.0).abs() < 1e-12, "k={k}");
        }
        assert_eq!(re[0], 1.0);
        assert_eq!(im[0], 0.0);
        // k = 4 is -j
        assert!(re[4].abs() < 1e-15);
        assert!((im[4] + 1.0).abs() < 1e-15);
    }

    #[test]
    fn bit_reversal_is_an_involution() {
        let rev = bit_reverse16();
        for i in 0..16 {
            assert_eq!(rev[rev[i]], i);
        }
        assert_eq!(rev[1], 8);
        assert_eq!(rev[3], 12);
    }

    #[test]
    fn table_values_roundtrip_through_decimal_text() {
        // The mini-C generator relies on shortest-roundtrip printing.
        let (c, s) = basis_tables();
        for v in c.iter().chain(&s) {
            let text = format!("{v:?}");
            let back: f64 = text.parse().unwrap();
            assert_eq!(back.to_bits(), v.to_bits(), "{text}");
        }
    }
}
