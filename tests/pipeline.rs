//! Cross-crate integration tests: the full estimation pipeline from
//! calibration through workload simulation to error evaluation, at
//! reduced workload sizes.

use nfp_bench::{Evaluation, Mode};
use nfp_repro::core::ErrorSummary;
use nfp_repro::workloads::{fse_kernels, hevc_kernels, Preset};

/// One shared evaluation (calibration is the expensive part).
fn eval() -> &'static Evaluation {
    use std::sync::OnceLock;
    static EVAL: OnceLock<Evaluation> = OnceLock::new();
    EVAL.get_or_init(|| Evaluation::new().expect("calibration"))
}

#[test]
fn estimation_errors_are_in_the_papers_band() {
    let eval = eval();
    let preset = Preset::quick();
    // A representative slice: 4 HEVC + 2 FSE kernels, both variants.
    let mut kernels = Vec::new();
    let hevc = hevc_kernels(&preset).expect("kernels");
    kernels.extend(hevc.into_iter().step_by(9));
    kernels.extend(fse_kernels(&preset).expect("kernels").into_iter().take(2));
    let results = eval.run_all(&kernels).expect("pipeline");
    assert_eq!(results.len(), kernels.len() * 2);

    let t = ErrorSummary::from_errors(&results.iter().map(|r| r.time_error()).collect::<Vec<_>>())
        .expect("non-empty kernel set");
    let e =
        ErrorSummary::from_errors(&results.iter().map(|r| r.energy_error()).collect::<Vec<_>>())
            .expect("non-empty kernel set");
    // The paper reports ~2.7 % mean and <7 % max; allow headroom but
    // fail if the model drifts out of the regime.
    assert!(
        t.mean_abs < 0.06,
        "mean |time error| = {:.2}%",
        t.mean_abs * 100.0
    );
    assert!(
        e.mean_abs < 0.06,
        "mean |energy error| = {:.2}%",
        e.mean_abs * 100.0
    );
    assert!(
        t.max_abs < 0.12,
        "max |time error| = {:.2}%",
        t.max_abs * 100.0
    );
    assert!(
        e.max_abs < 0.12,
        "max |energy error| = {:.2}%",
        e.max_abs * 100.0
    );
}

#[test]
fn fpu_tradeoff_has_the_papers_shape() {
    let eval = eval();
    let preset = Preset::quick();
    let fse = &fse_kernels(&preset).expect("kernels")[0];
    let hevc = &hevc_kernels(&preset).expect("kernels")[4];

    let run = |k, m| eval.run_kernel(k, m).expect("run");
    let fse_float = run(fse, Mode::Float);
    let fse_fixed = run(fse, Mode::Fixed);
    let hevc_float = run(hevc, Mode::Float);
    let hevc_fixed = run(hevc, Mode::Fixed);

    // FSE: the FPU should save the vast majority of time and energy.
    let fse_saving = 1.0 - fse_float.measured.time_s / fse_fixed.measured.time_s;
    assert!(
        fse_saving > 0.80,
        "FSE time saving {:.1}% (paper: 92.8%)",
        fse_saving * 100.0
    );
    // HEVC: a clear but much smaller saving.
    let hevc_saving = 1.0 - hevc_float.measured.time_s / hevc_fixed.measured.time_s;
    assert!(
        (0.15..0.60).contains(&hevc_saving),
        "HEVC time saving {:.1}% (paper: 43.5%)",
        hevc_saving * 100.0
    );
    assert!(fse_saving > hevc_saving + 0.2, "FSE must benefit far more");
}

#[test]
fn estimates_track_counts_not_measurements() {
    // The estimator must be a pure function of the count vector: two
    // kernels with identical counts get identical estimates even
    // though measurement noise differs.
    let eval = eval();
    let preset = Preset::quick();
    let kernel = &hevc_kernels(&preset).expect("kernels")[0];
    let a = eval.run_kernel(kernel, Mode::Float).expect("run");
    let b = eval.run_kernel(kernel, Mode::Float).expect("run");
    assert_eq!(a.counts, b.counts);
    assert_eq!(a.estimate, b.estimate);
    // Same seed -> same measurement too (full determinism).
    assert_eq!(a.measured, b.measured);
}

#[test]
fn umbrella_crate_reexports_work_together() {
    // Compile with nfp_repro paths only (the public API surface).
    let program = nfp_repro::cc::compile(
        "int main() { return 7; }",
        &nfp_repro::cc::CompileOptions::new(nfp_repro::cc::FloatMode::Hard),
    )
    .unwrap();
    let mut machine = nfp_repro::sim::Machine::boot(&program.words);
    let result = machine.run(10_000).unwrap();
    assert_eq!(result.exit_code, 7);
    assert_eq!(
        nfp_repro::sparc::Category::ALL.len(),
        nfp_repro::sparc::CATEGORY_COUNT
    );
}

#[test]
fn parallel_sweep_matches_sequential() {
    let eval = eval();
    let preset = Preset::quick();
    let kernels: Vec<_> = hevc_kernels(&preset)
        .expect("kernels")
        .into_iter()
        .take(2)
        .collect();
    let seq = eval.run_all(&kernels).expect("sequential");
    let par = eval.run_all_parallel(&kernels).expect("parallel");
    assert_eq!(seq.len(), par.len());
    for (a, b) in seq.iter().zip(&par) {
        assert_eq!(a.name, b.name);
        assert_eq!(a.counts, b.counts);
        assert_eq!(a.estimate, b.estimate);
        assert_eq!(a.measured, b.measured);
    }
}
