//! Adversarial no-panic fuzz harness for the simulator.
//!
//! Long fault campaigns feed the machine corrupted instruction
//! streams, truncated images, and RAM geometries no hand-written
//! workload would produce. The robustness contract is that *nothing*
//! a guest image can contain panics `nfp-sim`: every malformed input
//! surfaces as a typed [`SimError`] / [`BusFault`] (or a clean run
//! result). Each property here simply drives the public API with
//! hostile inputs — a panic anywhere in the simulator fails the test.
//!
//! CI runs this file a second time with `PROPTEST_CASES` elevated.

use nfp_sim::fault::{inject, plan, undo, FaultSpace};
use nfp_sim::machine::TrapPolicy;
use nfp_sim::{Dispatch, Machine, MachineConfig, SimError, Watchdog, RAM_BASE};
use proptest::prelude::*;
use std::time::Duration;

/// Uniform choice over every dispatch mode.
fn any_dispatch() -> impl Strategy<Value = Dispatch> {
    (0usize..Dispatch::ALL.len()).prop_map(|i| Dispatch::ALL[i])
}

/// A machine with a small RAM (fast per-case allocation) in the given
/// execution/trap/FPU configuration.
fn small_machine(dispatch: Dispatch, recover: bool, fpu: bool) -> Machine {
    Machine::new(MachineConfig {
        ram_size: 1 << 20,
        fpu_enabled: fpu,
        dispatch,
        trap_policy: if recover {
            TrapPolicy::Recover
        } else {
            TrapPolicy::Abort
        },
        ..MachineConfig::default()
    })
}

/// Runs the loaded machine to completion under a bounded watchdog,
/// asserting only that no panic escapes: any `Result` is acceptable.
fn drive(m: &mut Machine) {
    let wd = Watchdog {
        max_instrs: 20_000,
        wall: Some(Duration::from_secs(5)),
    };
    let _ = m.run_watchdog(&wd);
}

proptest! {
    // Arbitrary instruction words through the full run loop: every
    // combination of dispatch mode, abort/recover policy, and FPU
    // presence. This is the harness that originally surfaced the
    // ragged-RAM-edge slicing panics fixed in `bus.rs`.
    #[test]
    fn arbitrary_instruction_words_never_panic(
        words in prop::collection::vec(any::<u32>(), 1..96),
        dispatch in any_dispatch(),
        recover in any::<bool>(),
        fpu in any::<bool>(),
    ) {
        let mut m = small_machine(dispatch, recover, fpu);
        m.load_image(RAM_BASE, &words).expect("aligned in-RAM image loads");
        drive(&mut m);
    }

    // The same arbitrary stream must behave identically under every
    // dispatch mode even when it is garbage: block batching, threaded
    // dispatch, and superblock traces are optimisations, not semantic
    // switches, and corrupted code is exactly what fault campaigns
    // execute through them.
    #[test]
    fn arbitrary_words_agree_across_modes(
        words in prop::collection::vec(any::<u32>(), 1..64),
        recover in any::<bool>(),
    ) {
        let observe = |dispatch: Dispatch| {
            let mut m = small_machine(dispatch, recover, true);
            m.load_image(RAM_BASE, &words).expect("image loads");
            let wd = Watchdog { max_instrs: 5_000, wall: None };
            let res = m.run_watchdog(&wd);
            (format!("{res:?}"), m.instret(), *m.counts())
        };
        let stepped = observe(Dispatch::Step);
        for d in [Dispatch::Block, Dispatch::Threaded, Dispatch::Traced] {
            prop_assert_eq!(&stepped, &observe(d), "{} diverged from step", d);
        }
    }

    // A corrupted threaded dispatch-table entry (a linear instruction
    // whose entry claims it is a block ender) must surface as the
    // typed `SimError::DispatchViolation` — never a panic and never a
    // silently wrong run — whether it is hit through the flat
    // threaded path or mid-superblock through a trace.
    #[test]
    fn corrupted_dispatch_entries_never_panic(
        words in prop::collection::vec(any::<u32>(), 4..64),
        index in 0usize..64,
        dispatch in any::<bool>().prop_map(|t| if t { Dispatch::Traced } else { Dispatch::Threaded }),
        recover in any::<bool>(),
    ) {
        let mut m = small_machine(dispatch, recover, true);
        m.load_image(RAM_BASE, &words).expect("image loads");
        let corrupted = m.test_corrupt_dispatch(index % words.len());
        let wd = Watchdog { max_instrs: 5_000, wall: Some(Duration::from_secs(5)) };
        match m.run_watchdog(&wd) {
            Err(SimError::DispatchViolation { pc }) => {
                // Only a corrupted entry may report a routing
                // violation, and it carries the entry's own pc.
                prop_assert!(corrupted, "violation without corruption");
                prop_assert_eq!(pc, RAM_BASE + ((index % words.len()) as u32) * 4);
            }
            other => { let _ = format!("{other:?}"); }
        }
    }

    // Truncated and out-of-bounds images: random RAM geometry (sizes
    // deliberately not multiples of the access width), image bases at
    // and past the RAM edge. `load_image` must either succeed or
    // return a typed error — and a machine whose image straddles the
    // edge must still run without panicking.
    #[test]
    fn malformed_images_never_panic(
        ram_size in 4096u32..(1 << 16),
        base_off in 0u32..(1 << 17),
        words in prop::collection::vec(any::<u32>(), 0..64),
        dispatch in any_dispatch(),
    ) {
        let mut m = Machine::new(MachineConfig {
            ram_size,
            dispatch,
            ..MachineConfig::default()
        });
        // Unaligned bases must be rejected, never aliased.
        if let Err(e) = m.load_image(RAM_BASE + base_off, &words) {
            let _ = e.to_string();
            return Ok(());
        }
        drive(&mut m);
    }

    // Overlapping segment loads: the second image either lands
    // disjoint (and loads) or overlaps (and is rejected) — both paths
    // must leave a runnable, panic-free machine.
    #[test]
    fn overlapping_segments_never_panic(
        words in prop::collection::vec(any::<u32>(), 1..32),
        second_off in 0u32..256,
        second in prop::collection::vec(any::<u32>(), 1..32),
    ) {
        let mut m = small_machine(Dispatch::Traced, true, true);
        m.load_image(RAM_BASE, &words).expect("image loads");
        let mut bytes = Vec::new();
        for w in &second {
            bytes.extend_from_slice(&w.to_be_bytes());
        }
        match m.bus.write_bytes(RAM_BASE + second_off * 4, &bytes) {
            Ok(()) => {}
            Err(e) => { let _ = e.to_string(); }
        }
        drive(&mut m);
    }

    // Seeded fault plans over arbitrary code: inject, run, undo,
    // restore — the full campaign replay cycle on garbage programs.
    #[test]
    fn fault_replay_cycle_never_panics(
        words in prop::collection::vec(any::<u32>(), 4..48),
        seed in any::<u64>(),
        dispatch in any_dispatch(),
    ) {
        let mut m = small_machine(dispatch, true, true);
        m.load_image(RAM_BASE, &words).expect("image loads");
        let cp = m.checkpoint();
        let space = FaultSpace {
            max_instret: 64,
            code_len: words.len() as u32,
            ram_ranges: vec![(RAM_BASE, 4096)],
            fp: true,
        };
        for fault in plan(&space, 8, seed) {
            let armed = inject(&mut m, &fault).expect("in-bounds injection");
            drive(&mut m);
            undo(&mut m, &armed).expect("undo patches back");
            m.restore(&cp);
        }
    }

    // run_until must stop exactly at its target or report HaltedEarly,
    // never panic, even when the target lands mid-block (or
    // mid-superblock) of corrupted code.
    #[test]
    fn run_until_on_garbage_never_panics(
        words in prop::collection::vec(any::<u32>(), 1..48),
        target in 0u64..256,
        dispatch in any_dispatch(),
    ) {
        let mut m = small_machine(dispatch, true, true);
        m.load_image(RAM_BASE, &words).expect("image loads");
        match m.run_until(target) {
            Ok(()) => prop_assert_eq!(m.instret(), target),
            Err(SimError::HaltedEarly { instret }) => prop_assert!(instret <= target),
            Err(e) => { let _ = e.to_string(); }
        }
    }
}
