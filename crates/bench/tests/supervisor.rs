//! Supervisor acceptance tests: a campaign killed mid-run and resumed
//! from its journal is indistinguishable from an uninterrupted one; a
//! panicking replay is retried then quarantined without aborting the
//! campaign or tearing the journal; and a genuinely spinning replay is
//! classified as a hang by the wall deadline.

use nfp_bench::{run_supervised, CampaignConfig, Mode, SupervisorConfig};
use nfp_core::{HarnessCause, NfpError, Outcome};
use nfp_workloads::{fse_kernels, Kernel, Preset};
use std::io::Write;
use std::path::PathBuf;
use std::time::Duration;

fn kernel() -> Kernel {
    fse_kernels(&Preset::quick())
        .expect("quick preset builds")
        .into_iter()
        .next()
        .expect("quick preset has FSE kernels")
}

fn campaign(injections: usize) -> CampaignConfig {
    CampaignConfig {
        injections,
        seed: 0xfeed_5eed,
        ..CampaignConfig::default()
    }
}

/// Two workers keep the per-worker golden-run preparation cost down.
fn supervisor(campaign: CampaignConfig) -> SupervisorConfig {
    let mut cfg = SupervisorConfig::new(campaign);
    cfg.workers = Some(2);
    cfg
}

fn tmp_journal(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!(
        "nfp_supervisor_{name}_{}.jsonl",
        std::process::id()
    ))
}

#[test]
fn kill_and_resume_yields_identical_report() {
    let k = kernel();
    let baseline = run_supervised(&k, Mode::Float, &supervisor(campaign(96))).unwrap();

    // "Kill" the campaign after 31 journal writes: the abort hook stops
    // the supervisor exactly as a SIGKILL with a valid journal on disk.
    let journal = tmp_journal("resume");
    let mut interrupted = supervisor(campaign(96));
    interrupted.journal = Some(journal.clone());
    interrupted.test_abort_after = Some(31);
    let aborted = run_supervised(&k, Mode::Float, &interrupted).unwrap();
    assert!(aborted.aborted);
    assert_eq!(aborted.completed, 31);
    assert!(aborted.result.records.len() == 31);

    // A real mid-write kill can also leave a torn trailing line; resume
    // must truncate it rather than reject the journal.
    {
        let mut f = std::fs::OpenOptions::new()
            .append(true)
            .open(&journal)
            .unwrap();
        write!(f, "{{\"i\":9999,\"at\":12").unwrap();
    }

    let mut resuming = supervisor(campaign(96));
    resuming.journal = Some(journal.clone());
    resuming.resume = true;
    let resumed = run_supervised(&k, Mode::Float, &resuming).unwrap();
    assert_eq!(resumed.resumed, 31);
    assert_eq!(resumed.completed, 96);
    assert!(!resumed.aborted);

    // The merged result is byte-identical to the uninterrupted run.
    assert_eq!(resumed.result.records, baseline.result.records);
    assert_eq!(resumed.result.report, baseline.result.report);
    assert_eq!(
        resumed.result.report.render(),
        baseline.result.report.render()
    );
    assert_eq!(
        resumed.result.golden_instret,
        baseline.result.golden_instret
    );
    let _ = std::fs::remove_file(&journal);
}

#[test]
fn panicking_replay_is_retried_then_quarantined() {
    let k = kernel();
    let baseline = run_supervised(&k, Mode::Float, &supervisor(campaign(48))).unwrap();

    // One forced panic: the worker rebuilds its rig, retries, and the
    // record classifies exactly as it would have without the panic.
    let mut once = supervisor(campaign(48));
    once.test_panic_at = Some((5, 1));
    let retried = run_supervised(&k, Mode::Float, &once).unwrap();
    assert!(retried.quarantined.is_empty());
    assert_eq!(retried.result.records, baseline.result.records);
    assert_eq!(retried.result.report, baseline.result.report);

    // Two forced panics: the injection is quarantined as HarnessFault
    // with its fault spec preserved; every other record is untouched
    // and the journal stays intact.
    let journal = tmp_journal("quarantine");
    let mut twice = supervisor(campaign(48));
    twice.journal = Some(journal.clone());
    twice.test_panic_at = Some((7, 2));
    let quarantined = run_supervised(&k, Mode::Float, &twice).unwrap();
    assert_eq!(quarantined.completed, 48);
    assert_eq!(quarantined.quarantined.len(), 1);
    assert_eq!(quarantined.quarantined[0].index, 7);
    assert!(quarantined.quarantined[0].detail.contains("forced panic"));
    assert_eq!(quarantined.quarantined[0].cause, HarnessCause::Panic);
    assert_eq!(quarantined.result.records[7].outcome, Outcome::HarnessFault);
    assert_eq!(
        quarantined.result.records[7].fault,
        baseline.result.records[7].fault
    );
    let totals = quarantined.result.outcome_totals();
    assert_eq!(totals.get(Outcome::HarnessFault), 1);
    for (i, (got, want)) in quarantined
        .result
        .records
        .iter()
        .zip(&baseline.result.records)
        .enumerate()
    {
        if i != 7 {
            assert_eq!(got, want, "record {i} diverged around the quarantine");
        }
    }

    // The journal survived the panics un-torn: a resume restores all 48
    // records (including the quarantined one) without replaying any.
    let mut restore = supervisor(campaign(48));
    restore.journal = Some(journal.clone());
    restore.resume = true;
    let restored = run_supervised(&k, Mode::Float, &restore).unwrap();
    assert_eq!(restored.resumed, 48);
    assert_eq!(restored.result.records, quarantined.result.records);
    assert_eq!(restored.result.report, quarantined.result.report);
    assert_eq!(restored.quarantined.len(), 1);
    let _ = std::fs::remove_file(&journal);
}

#[test]
fn wall_deadline_classifies_spin_as_hang() {
    let k = kernel();
    let baseline = run_supervised(&k, Mode::Float, &supervisor(campaign(48))).unwrap();
    // The determinism comparison below needs a plan with no genuine
    // budget hangs (those records would legitimately classify the same
    // either way, but keeping them out makes the equality exact).
    assert_eq!(
        baseline.result.outcome_totals().get(Outcome::Hang),
        0,
        "pick a seed whose plan has no genuine hangs for this test"
    );

    // Unbounded escalation means the instruction budget can never
    // produce a Hang on its own — only the wall deadline can. The spin
    // hook patches a self-loop over injection 3's resume point, so that
    // replay *must* flow through the wall path.
    let mut spin = supervisor(CampaignConfig {
        wall: Some(Duration::from_millis(400)),
        escalation: u32::MAX,
        ..campaign(48)
    });
    spin.test_spin_at = Some(3);
    let spun = run_supervised(&k, Mode::Float, &spin).unwrap();
    assert_eq!(spun.result.records[3].outcome, Outcome::Hang);

    // Same-seed determinism of every other record is preserved.
    for (i, (got, want)) in spun
        .result
        .records
        .iter()
        .zip(&baseline.result.records)
        .enumerate()
    {
        if i != 3 {
            assert_eq!(got, want, "record {i} diverged under the wall deadline");
        }
    }
}

#[test]
fn torn_or_empty_header_line_yields_a_clean_journal_error() {
    let k = kernel();
    // A kill during the very first write can leave a journal whose
    // *header* line is torn (no trailing newline, truncated JSON), or
    // an empty file, or a header's worth of garbage. None of these may
    // panic; all must surface as a Journal error naming the path.
    let cases: [(&str, &[u8]); 4] = [
        ("empty", b""),
        ("torn_header", b"{\"v\":1,\"kind\":\"nfp-campaign-jou"),
        ("garbage_header", b"not json at all\n"),
        // A valid-looking but non-journal object is equally rejected.
        ("wrong_kind", b"{\"v\":1,\"kind\":\"something-else\"}\n"),
    ];
    for (name, bytes) in cases {
        let journal = tmp_journal(&format!("header_{name}"));
        std::fs::write(&journal, bytes).unwrap();
        let mut resuming = supervisor(campaign(16));
        resuming.journal = Some(journal.clone());
        resuming.resume = true;
        match run_supervised(&k, Mode::Float, &resuming) {
            Err(NfpError::Journal { path, reason }) => {
                assert!(
                    path.contains(&format!("header_{name}")),
                    "case {name}: error names path {path:?}"
                );
                assert!(!reason.is_empty(), "case {name}: empty reason");
            }
            Err(other) => panic!("case {name}: expected Journal error, got {other:?}"),
            Ok(_) => panic!("case {name}: resume must not succeed"),
        }
        let _ = std::fs::remove_file(&journal);
    }
}

#[test]
fn stale_journal_is_rejected_with_the_mismatching_field() {
    let k = kernel();
    let journal = tmp_journal("mismatch");
    let mut fresh = supervisor(campaign(32));
    fresh.journal = Some(journal.clone());
    run_supervised(&k, Mode::Float, &fresh).unwrap();

    let mut other_seed = supervisor(CampaignConfig {
        seed: 0x0dd_5eed,
        ..campaign(32)
    });
    other_seed.journal = Some(journal.clone());
    other_seed.resume = true;
    match run_supervised(&k, Mode::Float, &other_seed) {
        Err(NfpError::JournalMismatch { field, .. }) => assert_eq!(field, "seed"),
        Err(other) => panic!("expected JournalMismatch, got {other:?}"),
        Ok(_) => panic!("a stale journal must not resume"),
    }
    let _ = std::fs::remove_file(&journal);
}
