//! Estimation-error metrics (paper Eq. 3 and Table III) and the
//! pipeline-level error type.

use nfp_sim::SimError;
use std::fmt;

/// Relative estimation error `ε = (x̂ − x_meas) / x_meas` (Eq. 3).
pub fn relative_error(estimated: f64, measured: f64) -> f64 {
    (estimated - measured) / measured
}

/// Error summary over a kernel set (the two rows of Table III).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ErrorSummary {
    /// Mean absolute relative error, `ε̄ = (1/M) Σ |ε_m|`.
    pub mean_abs: f64,
    /// Maximum absolute relative error, `ε_max = max |ε_m|`.
    pub max_abs: f64,
    /// Number of kernels M.
    pub kernels: usize,
}

impl ErrorSummary {
    /// Summarises a slice of signed relative errors; `None` for an
    /// empty slice (a summary over zero kernels is meaningless).
    pub fn from_errors(errors: &[f64]) -> Option<Self> {
        if errors.is_empty() {
            return None;
        }
        let mean_abs = errors.iter().map(|e| e.abs()).sum::<f64>() / errors.len() as f64;
        let max_abs = errors.iter().map(|e| e.abs()).fold(0.0, f64::max);
        Some(ErrorSummary {
            mean_abs,
            max_abs,
            kernels: errors.len(),
        })
    }

    /// Summarises (estimated, measured) pairs; `None` for an empty
    /// slice.
    pub fn from_pairs(pairs: &[(f64, f64)]) -> Option<Self> {
        let errors: Vec<f64> = pairs
            .iter()
            .map(|&(est, meas)| relative_error(est, meas))
            .collect();
        Self::from_errors(&errors)
    }
}

/// Top-level error for the estimation and fault-campaign pipelines:
/// everything that can go wrong between "compile a kernel" and "report
/// a table" that is not a bug in the harness itself.
#[derive(Debug, Clone, PartialEq)]
pub enum NfpError {
    /// The simulator reported an error (trap, watchdog, bad image...).
    Sim(SimError),
    /// A kernel ran to completion but exited non-zero.
    KernelFailed {
        /// Kernel name.
        kernel: String,
        /// The kernel's exit code.
        exit_code: u32,
    },
    /// A kernel's emitted result words did not match the expected
    /// golden words.
    OutputMismatch {
        /// Kernel name.
        kernel: String,
    },
    /// A summary or report was requested over an empty input set.
    Empty {
        /// What was empty, for the message.
        what: &'static str,
    },
    /// A parallel worker died (or exited early) without delivering the
    /// result it owned.
    WorkerLost {
        /// The job the lost worker owned, e.g. `fse_img00_float` or
        /// `injections 120..160 of fse_img00_float`.
        job: String,
    },
    /// A campaign journal could not be read, written, or parsed.
    Journal {
        /// Journal path, for the message.
        path: String,
        /// What went wrong (I/O or format detail).
        reason: String,
    },
    /// A campaign journal exists but was written by a different
    /// campaign: resuming from it would silently mix results.
    JournalMismatch {
        /// Journal path, for the message.
        path: String,
        /// Which binding field disagreed (kernel, seed, ...).
        field: &'static str,
        /// The value recorded in the journal header.
        journal: String,
        /// The value the resuming campaign expects.
        campaign: String,
    },
    /// A workload artefact (kernel registry entry, generated program,
    /// encoded bitstream) could not be built.
    Workload {
        /// What was being built, e.g. `hevc_movobj_lowdelay_qp32`.
        what: String,
        /// Why it failed.
        reason: String,
    },
    /// A differential calibration was degenerate: zero test-instruction
    /// count or a rank-deficient reference/test measurement pair would
    /// yield NaN/∞ specific costs.
    Calibration {
        /// Model class being calibrated.
        class: String,
        /// What made the inputs degenerate.
        reason: String,
    },
    /// A campaign worker process died from a signal (SIGKILL by the
    /// liveness watchdog, SIGSEGV/SIGABRT of its own accord, ...).
    WorkerKilled {
        /// The signal that terminated the worker, when known.
        signal: Option<i32>,
    },
    /// A campaign worker process violated the supervisor protocol:
    /// oversized or malformed frame, out-of-order record, or a
    /// version/config handshake mismatch.
    ProtocolViolation {
        /// What the worker sent (or failed to send).
        detail: String,
    },
    /// Merging per-shard campaign journals failed an integrity check:
    /// a binding mismatch, a per-record CRC failure, a range gap or
    /// overlap, a duplicate record, or a summary that disagrees with
    /// the records it covers.
    ShardMerge {
        /// The shard journal that failed the check.
        path: String,
        /// Which invariant it violated.
        reason: String,
    },
    /// A campaign shard exhausted its re-dispatch budget without ever
    /// producing a complete, valid journal.
    ShardLost {
        /// Shard index within the campaign.
        shard: u32,
        /// First plan index of the shard's injection range.
        start: u64,
        /// One past the last plan index of the shard's range.
        end: u64,
        /// What killed the final attempt.
        detail: String,
    },
    /// A network operation in the remote dispatch layer failed:
    /// connect, resolve, a framed read/write, or a peer deadline.
    Net {
        /// The remote address (or peer label) involved.
        addr: String,
        /// What went wrong.
        detail: String,
    },
    /// A campaign submission was refused by the coordinator's
    /// admission control: the in-flight limit was reached and the
    /// client's queue allowance was already full.
    Admission {
        /// The client whose submission was refused.
        client: String,
        /// Why it was refused.
        reason: String,
    },
    /// An audit re-execution of a leased injection range reached a
    /// verdict about a worker: `pass` (the streams agreed), `convict`
    /// (the trusted tie-breaker proved the worker lied), or
    /// `inconclusive` (no second opinion could be obtained before the
    /// re-dispatch budget ran out).
    Audit {
        /// The audited worker (peer label or worker id).
        worker: String,
        /// The campaign the range belongs to.
        campaign: String,
        /// First plan index of the audited injection range.
        start: u64,
        /// One past the last plan index of the audited range.
        end: u64,
        /// The verdict: `pass`, `convict`, or `inconclusive`.
        verdict: String,
    },
}

impl fmt::Display for NfpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NfpError::Sim(e) => write!(f, "simulation failed: {e}"),
            NfpError::KernelFailed { kernel, exit_code } => {
                write!(f, "kernel '{kernel}' exited with code {exit_code}")
            }
            NfpError::OutputMismatch { kernel } => {
                write!(f, "kernel '{kernel}' produced wrong result words")
            }
            NfpError::Empty { what } => write!(f, "nothing to summarise: {what} is empty"),
            NfpError::WorkerLost { job } => {
                write!(f, "parallel worker died without delivering '{job}'")
            }
            NfpError::Journal { path, reason } => {
                write!(f, "campaign journal '{path}': {reason}")
            }
            NfpError::JournalMismatch {
                path,
                field,
                journal,
                campaign,
            } => {
                write!(
                    f,
                    "campaign journal '{path}' belongs to a different campaign: \
                     {field} is {journal} in the journal but {campaign} here \
                     (delete the journal or fix the flags to resume)"
                )
            }
            NfpError::Workload { what, reason } => {
                write!(f, "building workload '{what}' failed: {reason}")
            }
            NfpError::Calibration { class, reason } => {
                write!(f, "calibration of '{class}' is degenerate: {reason}")
            }
            NfpError::WorkerKilled { signal } => match signal {
                Some(s) => write!(f, "campaign worker process killed by signal {s}"),
                None => write!(f, "campaign worker process died unexpectedly"),
            },
            NfpError::ProtocolViolation { detail } => {
                write!(f, "campaign worker protocol violation: {detail}")
            }
            NfpError::ShardMerge { path, reason } => {
                write!(f, "merging shard journal '{path}' failed: {reason}")
            }
            NfpError::ShardLost {
                shard,
                start,
                end,
                detail,
            } => {
                write!(
                    f,
                    "shard {shard} (injections {start}..{end}) lost after exhausting its \
                     re-dispatch budget: {detail}"
                )
            }
            NfpError::Net { addr, detail } => {
                write!(f, "network dispatch via '{addr}' failed: {detail}")
            }
            NfpError::Admission { client, reason } => {
                write!(f, "campaign submission from '{client}' refused: {reason}")
            }
            NfpError::Audit {
                worker,
                campaign,
                start,
                end,
                verdict,
            } => {
                write!(
                    f,
                    "audit of injections {start}..{end} of '{campaign}' returned verdict \
                     '{verdict}' for worker {worker}"
                )
            }
        }
    }
}

impl std::error::Error for NfpError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            NfpError::Sim(e) => Some(e),
            _ => None,
        }
    }
}

impl From<SimError> for NfpError {
    fn from(e: SimError) -> Self {
        NfpError::Sim(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relative_error_signs() {
        assert!((relative_error(103.0, 100.0) - 0.03).abs() < 1e-12);
        assert!((relative_error(97.0, 100.0) + 0.03).abs() < 1e-12);
    }

    #[test]
    fn summary_mean_and_max() {
        let s = ErrorSummary::from_errors(&[0.01, -0.03, 0.02]).unwrap();
        assert!((s.mean_abs - 0.02).abs() < 1e-12);
        assert!((s.max_abs - 0.03).abs() < 1e-12);
        assert_eq!(s.kernels, 3);
    }

    #[test]
    fn summary_from_pairs() {
        let s = ErrorSummary::from_pairs(&[(102.0, 100.0), (196.0, 200.0)]).unwrap();
        assert!((s.mean_abs - 0.02).abs() < 1e-12);
        assert!((s.max_abs - 0.02).abs() < 1e-12);
    }

    #[test]
    fn empty_summary_is_none() {
        assert_eq!(ErrorSummary::from_errors(&[]), None);
        assert_eq!(ErrorSummary::from_pairs(&[]), None);
    }

    #[test]
    fn nfp_error_display_and_conversion() {
        let e: NfpError = SimError::BudgetExhausted { limit: 5 }.into();
        assert_eq!(
            e.to_string(),
            "simulation failed: instruction budget of 5 exhausted"
        );
        assert!(std::error::Error::source(&e).is_some());
        assert_eq!(
            NfpError::Empty { what: "kernel set" }.to_string(),
            "nothing to summarise: kernel set is empty"
        );
    }

    #[test]
    fn worker_and_protocol_errors_display() {
        assert_eq!(
            NfpError::WorkerKilled { signal: Some(9) }.to_string(),
            "campaign worker process killed by signal 9"
        );
        assert_eq!(
            NfpError::WorkerKilled { signal: None }.to_string(),
            "campaign worker process died unexpectedly"
        );
        let shown = NfpError::ProtocolViolation {
            detail: "oversized frame".to_string(),
        }
        .to_string();
        assert!(shown.contains("protocol violation"), "{shown}");
        assert!(shown.contains("oversized frame"), "{shown}");
        let shown = NfpError::Calibration {
            class: "NOP".to_string(),
            reason: "zero test-instruction count".to_string(),
        }
        .to_string();
        assert!(
            shown.contains("NOP") && shown.contains("degenerate"),
            "{shown}"
        );
    }

    #[test]
    fn shard_errors_display() {
        let shown = NfpError::ShardMerge {
            path: "c.shard2of4.jsonl".to_string(),
            reason: "record 17 fails its CRC".to_string(),
        }
        .to_string();
        assert!(shown.contains("c.shard2of4.jsonl"), "{shown}");
        assert!(shown.contains("CRC"), "{shown}");
        let shown = NfpError::ShardLost {
            shard: 2,
            start: 200,
            end: 300,
            detail: "journal torn on every attempt".to_string(),
        }
        .to_string();
        assert!(shown.contains("shard 2"), "{shown}");
        assert!(shown.contains("200..300"), "{shown}");
        assert!(shown.contains("re-dispatch budget"), "{shown}");
    }

    #[test]
    fn net_and_admission_errors_display() {
        let shown = NfpError::Net {
            addr: "10.0.0.7:7447".to_string(),
            detail: "connect timed out".to_string(),
        }
        .to_string();
        assert!(shown.contains("10.0.0.7:7447"), "{shown}");
        assert!(shown.contains("connect timed out"), "{shown}");
        let shown = NfpError::Admission {
            client: "tenant-a".to_string(),
            reason: "2 campaigns already queued (per-client cap 2)".to_string(),
        }
        .to_string();
        assert!(shown.contains("tenant-a"), "{shown}");
        assert!(shown.contains("refused"), "{shown}");
        assert!(shown.contains("per-client cap"), "{shown}");
    }

    #[test]
    fn audit_errors_display_every_verdict() {
        for verdict in ["pass", "convict", "inconclusive"] {
            let shown = NfpError::Audit {
                worker: "worker 81403".to_string(),
                campaign: "fse_img00".to_string(),
                start: 200,
                end: 250,
                verdict: verdict.to_string(),
            }
            .to_string();
            assert!(shown.contains("audit"), "{shown}");
            assert!(shown.contains("worker 81403"), "{shown}");
            assert!(shown.contains("fse_img00"), "{shown}");
            assert!(shown.contains("200..250"), "{shown}");
            assert!(shown.contains(verdict), "{shown}");
        }
    }
}
