#![allow(clippy::needless_range_loop)] // loops mirror the mini-C decoder

//! Shared constants of the mini-HEVC codec: the 8-point integer
//! transform matrix (HEVC's core DCT approximation), the zig-zag scan,
//! and the quantiser step table.
//!
//! Everything here must match `minic.rs`, which embeds the same tables
//! into the generated decoder source.

/// HEVC's 8-point integer DCT-II approximation (core transform rows).
pub const T8: [[i32; 8]; 8] = [
    [64, 64, 64, 64, 64, 64, 64, 64],
    [89, 75, 50, 18, -18, -50, -75, -89],
    [83, 36, -36, -83, -83, -36, 36, 83],
    [75, -18, -89, -50, 50, 89, 18, -75],
    [64, -64, -64, 64, 64, -64, -64, 64],
    [50, -89, 18, 75, -75, -18, 89, -50],
    [36, -83, 83, -36, -36, 83, -83, 36],
    [18, -50, 75, -89, 89, -75, 50, -18],
];

/// Zig-zag (up-right diagonal) scan order for an 8×8 block: maps scan
/// position to raster index.
pub fn zigzag8() -> [usize; 64] {
    let mut order = [0usize; 64];
    let mut idx = 0;
    for s in 0..15 {
        // diagonal s: positions with x + y == s
        if s % 2 == 0 {
            // up-right: start at (0, s) going to (s, 0)
            let mut y = s.min(7) as isize;
            let mut x = s as isize - y;
            while y >= 0 && x <= 7 {
                order[idx] = (y * 8 + x) as usize;
                idx += 1;
                y -= 1;
                x += 1;
            }
        } else {
            let mut x = s.min(7) as isize;
            let mut y = s as isize - x;
            while x >= 0 && y <= 7 {
                order[idx] = (y * 8 + x) as usize;
                idx += 1;
                x -= 1;
                y += 1;
            }
        }
    }
    order
}

/// Dequantiser level scales (HEVC's `levScale`), indexed by `qp % 6`.
pub const LEV_SCALE: [i32; 6] = [40, 45, 51, 57, 64, 72];

/// Quantiser step for a QP (a simplified HEVC-style exponential).
pub fn qstep(qp: u32) -> i32 {
    ((LEV_SCALE[(qp % 6) as usize] << (qp / 6)) >> 4).max(1)
}

/// Deblocking threshold for a QP.
pub fn deblock_threshold(qp: u32) -> i32 {
    qstep(qp) / 2 + 2
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transform_rows_are_nearly_orthogonal() {
        // HEVC's integer matrix only *approximates* an orthogonal DCT:
        // off-diagonal products are small but not exactly zero.
        for i in 0..8 {
            for j in 0..8 {
                let dot: i64 = (0..8).map(|k| (T8[i][k] * T8[j][k]) as i64).sum();
                if i == j {
                    assert!(dot > 30_000, "row {i} norm too small: {dot}");
                } else {
                    assert!(
                        dot.abs() <= 100,
                        "rows {i} and {j} far from orthogonal: {dot}"
                    );
                }
            }
        }
    }

    #[test]
    fn zigzag_is_a_permutation() {
        let z = zigzag8();
        let mut seen = [false; 64];
        for &p in &z {
            assert!(!seen[p], "duplicate {p}");
            seen[p] = true;
        }
        // starts at DC, then the two first off-diagonal positions
        assert_eq!(z[0], 0);
        assert!(z[1] == 1 || z[1] == 8);
    }

    #[test]
    fn qstep_grows_with_qp() {
        assert!(qstep(10) < qstep(32));
        assert!(qstep(32) < qstep(45));
        assert!(qstep(0) >= 1);
        // paper QPs
        assert_eq!(qstep(10), 8);
        assert_eq!(qstep(32), 102);
        assert_eq!(qstep(45), 456);
    }
}
