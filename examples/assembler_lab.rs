//! Assembly playground: write SPARC V8 assembly as text, assemble it,
//! execute it with a trace and a hotspot profile, and estimate its
//! non-functional properties — the full stack below the compiler.
//!
//! Run with: `cargo run --release --example assembler_lab`

use nfp_repro::core::{calibrate, ClassCounter, Paper};
use nfp_repro::sim::{Machine, PcHistogram, Tracer, RAM_BASE};
use nfp_repro::sparc::{disasm, parse_program, Category};
use nfp_repro::testbed::Testbed;

/// Euclid's algorithm on (91080, 43758), hand-written.
const SOURCE: &str = "
        ! gcd(%o0, %o1) by repeated remainder
        sethi %hi(0x16000), %o0
        or %o0, 0x3c8, %o0       ! 91080
        sethi %hi(0xaaee), %o1
        or %o1, 0x2ee, %o1       ! 43758 (%hi keeps the top 22 bits)
gcd:    subcc %o1, 0, %g0
        be done                  ! while (b != 0)
        nop
        wr %g0, 0, %y
        nop
        nop
        nop
        udiv %o0, %o1, %o2       ! q = a / b
        smul %o2, %o1, %o2       ! q * b
        sub %o0, %o2, %o2        ! r = a - q*b
        or %g0, %o1, %o0         ! a = b
        ba gcd
        or %g0, %o2, %o1         ! b = r (in the delay slot!)
done:   ta %g0 + 0
        nop
";

fn main() {
    let words = parse_program(SOURCE, RAM_BASE).expect("assembles");
    println!("assembled {} words:", words.len());
    print!("{}", disasm::disassemble_block(&words, RAM_BASE));

    struct Everything {
        counter: ClassCounter<Paper>,
        hist: PcHistogram,
        tracer: Tracer,
    }
    impl nfp_repro::sim::Observer for Everything {
        fn observe(&mut self, info: &nfp_repro::sim::ExecInfo) {
            self.counter.observe(info);
            self.hist.observe(info);
            self.tracer.observe(info);
        }
    }
    let mut obs = Everything {
        counter: ClassCounter::new(Paper),
        hist: PcHistogram::new(RAM_BASE, words.len()),
        tracer: Tracer::new(12),
    };
    let mut machine = Machine::boot(&words);
    let result = machine.run_observed(1_000_000, &mut obs).expect("runs");

    println!("\nfirst {} executed instructions:", obs.tracer.lines.len());
    for line in &obs.tracer.lines {
        println!("  {line}");
    }
    // `ta 0` reports %o0, which holds `a` once b reaches zero.
    println!(
        "\ngcd(91080, 43758) = {} ({} instructions executed)",
        result.exit_code, result.instret
    );
    assert_eq!(result.exit_code, 198);

    println!("\ninstruction mix:");
    for (cat, &n) in Category::ALL.iter().zip(obs.counter.counts()) {
        if n > 0 {
            println!("  {:<20} {:>6}", cat.name(), n);
        }
    }
    println!("\nhottest instructions:");
    for (pc, count) in obs.hist.hottest(5) {
        println!("  {pc:08x}  x{count}");
    }

    let testbed = Testbed::new();
    let cal = calibrate(&testbed, &Paper, 2).expect("calibration");
    let est = cal.model.estimate(obs.counter.counts());
    println!(
        "\nestimated cost on the LEON3-class board: {:.2} µs, {:.2} µJ",
        est.time_s * 1e6,
        est.energy_j * 1e6
    );
}
