#![warn(missing_docs)]
//! `nfp-core`: the paper's primary contribution — mechanistic
//! estimation of non-functional properties (processing time and
//! energy) from instruction-accurate simulation.
//!
//! Workflow (paper Sections IV–V):
//!
//! 1. **Calibrate** per-class specific costs on the (virtual) hardware
//!    testbed with differential reference/test kernels —
//!    [`calibration::calibrate`] regenerates Table I.
//! 2. **Count** instructions per class on the fast ISS —
//!    [`model::ClassCounter`] attached to an `nfp_sim::Machine`, or the
//!    simulator's built-in Table I counters.
//! 3. **Estimate** `Ê = Σ e_c·n_c`, `T̂ = Σ t_c·n_c` —
//!    [`model::CostModel::estimate`] (Eq. 1).
//! 4. **Evaluate** against testbed measurements with
//!    [`error::ErrorSummary`] (Eq. 3, Table III) and drive design
//!    decisions with [`dse::fpu_tradeoff`] (Table IV).
//!
//! The [`model::Coarse`] and [`model::Fine`] classifiers support the
//! category-granularity ablation.

pub mod calibration;
pub mod consistency;
pub mod dse;
pub mod error;
pub mod model;
pub mod vulnerability;

pub use calibration::{calibrate, calibrate_class, Calibration, ClassCalibration, UNROLL};
pub use consistency::{check_structure, validate, Finding, Severity, Validation};
pub use dse::{fpu_tradeoff, FpuTradeoff, KernelNfp};
pub use error::{relative_error, ErrorSummary, NfpError};
pub use model::{paper_table1, ClassCounter, Classifier, Coarse, CostModel, Estimate, Fine, Paper};
pub use vulnerability::{HarnessCause, Outcome, OutcomeCounts, VulnerabilityReport, OUTCOME_COUNT};
