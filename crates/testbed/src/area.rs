//! FPGA resource model: logical elements per synthesised component.
//!
//! The paper's Table IV reports the chip-area cost of adding an FPU as
//! "+109 % logical elements", obtained from Quartus synthesis of the
//! LEON3 configuration on the Cyclone IV. Synthesis is outside the
//! scope of a simulator, so this module substitutes a component-level
//! resource table with constants representative of a cacheless
//! LEON3 + GRFPU build on that device family. The *decision-making
//! use case* (trade area for time/energy) is fully preserved.

use std::fmt;

/// A synthesisable component of the SoC.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Component {
    /// LEON3 integer unit (7-stage pipeline, register file).
    IntegerUnit,
    /// Hardware multiplier.
    Multiplier,
    /// Hardware divider.
    Divider,
    /// Memory controller (SDRAM, cacheless configuration).
    MemoryController,
    /// Debug support unit + UART (GRMON attachment).
    DebugUart,
    /// GRFPU-class double-precision floating-point unit.
    Fpu,
}

impl Component {
    /// Logical elements this component occupies.
    pub fn logical_elements(self) -> u32 {
        match self {
            Component::IntegerUnit => 3180,
            Component::Multiplier => 540,
            Component::Divider => 310,
            Component::MemoryController => 420,
            Component::DebugUart => 150,
            Component::Fpu => 5014,
        }
    }

    /// Components of the baseline (FPU-less) configuration.
    pub fn baseline() -> &'static [Component] {
        &[
            Component::IntegerUnit,
            Component::Multiplier,
            Component::Divider,
            Component::MemoryController,
            Component::DebugUart,
        ]
    }
}

impl fmt::Display for Component {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            Component::IntegerUnit => "integer unit",
            Component::Multiplier => "multiplier",
            Component::Divider => "divider",
            Component::MemoryController => "memory controller",
            Component::DebugUart => "debug/UART",
            Component::Fpu => "FPU",
        };
        f.write_str(name)
    }
}

/// Area model for a CPU configuration.
#[derive(Debug, Clone)]
pub struct AreaModel {
    components: Vec<Component>,
}

impl AreaModel {
    /// The baseline cacheless LEON3 configuration (no FPU).
    pub fn baseline() -> Self {
        AreaModel {
            components: Component::baseline().to_vec(),
        }
    }

    /// The baseline plus the FPU (the paper's second configuration).
    pub fn with_fpu() -> Self {
        let mut m = Self::baseline();
        m.components.push(Component::Fpu);
        m
    }

    /// Total logical elements of this configuration.
    pub fn logical_elements(&self) -> u32 {
        self.components.iter().map(|c| c.logical_elements()).sum()
    }

    /// The components in this configuration.
    pub fn components(&self) -> &[Component] {
        &self.components
    }

    /// Relative change in logical elements going from `self` to
    /// `other` (Table IV's third row: +1.09 for baseline -> FPU).
    pub fn relative_change_to(&self, other: &AreaModel) -> f64 {
        let a = self.logical_elements() as f64;
        let b = other.logical_elements() as f64;
        (b - a) / a
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fpu_roughly_doubles_logical_elements() {
        let base = AreaModel::baseline();
        let fpu = AreaModel::with_fpu();
        let change = base.relative_change_to(&fpu);
        // Paper Table IV: +109 %.
        assert!(
            (1.05..1.13).contains(&change),
            "FPU area change {change:.3} outside the expected band"
        );
    }

    #[test]
    fn baseline_has_no_fpu() {
        assert!(!AreaModel::baseline().components().contains(&Component::Fpu));
        assert!(AreaModel::with_fpu().components().contains(&Component::Fpu));
    }

    #[test]
    fn totals_are_component_sums() {
        let base = AreaModel::baseline();
        let total: u32 = Component::baseline()
            .iter()
            .map(|c| c.logical_elements())
            .sum();
        assert_eq!(base.logical_elements(), total);
        assert_eq!(
            AreaModel::with_fpu().logical_elements(),
            total + Component::Fpu.logical_elements()
        );
    }
}
