//! Offline stand-in for the `proptest` crate.
//!
//! The build container has no network access and no crates.io mirror,
//! so the workspace vendors the API subset its property tests use:
//! the [`proptest!`] macro, [`strategy::Strategy`] with `prop_map` /
//! `prop_recursive` / `boxed`, range and tuple and array strategies,
//! [`collection::vec`], [`prop_oneof!`], `prop_assert*`, and the
//! config/error types. Inputs are drawn from a deterministic
//! per-test-seeded generator; there is **no shrinking** — a failing
//! case reports the case number and message only.

pub mod strategy;
pub mod test_runner;

/// Collection strategies (`prop::collection::vec`).
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// Size specification for [`vec`]: an exact length or a half-open
    /// range of lengths.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            SizeRange {
                lo: r.start,
                hi: r.end.max(r.start + 1),
            }
        }
    }

    /// Strategy for `Vec<T>` with element strategy `S`.
    #[derive(Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `Vec` strategy: `size` elements drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            let span = (self.size.hi - self.size.lo) as u64;
            let n = self.size.lo + (rng.next_u64() % span) as usize;
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Everything a property test needs in scope.
pub mod prelude {
    pub use crate::strategy::{any, Arbitrary, BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};

    /// Alias module so `prop::collection::vec` resolves like upstream.
    pub mod prop {
        pub use crate::collection;
    }
}

/// Defines property tests. Each function runs `config.cases` times
/// with fresh inputs drawn from the argument strategies.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@fns ($cfg) $($rest)*);
    };
    (@fns ($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            let mut rng =
                $crate::test_runner::TestRng::for_test(concat!(module_path!(), "::", stringify!($name)));
            for case in 0..config.cases {
                $(let $arg = $crate::strategy::Strategy::sample(&{ $strat }, &mut rng);)+
                let result: ::core::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| { { $body } Ok(()) })();
                if let Err(e) = result {
                    panic!("property failed at case {case}/{}: {e}", config.cases);
                }
            }
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest!(@fns ($crate::test_runner::ProptestConfig::default()) $($rest)*);
    };
}

/// `prop_assert!(cond)` / `prop_assert!(cond, "fmt", ...)`.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)),
            );
        }
    };
}

/// `prop_assert_eq!(a, b)` with optional context format.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(*a == *b, "assertion failed: {:?} != {:?}", a, b);
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(*a == *b, "{} ({:?} vs {:?})", format!($($fmt)+), a, b);
    }};
}

/// `prop_assert_ne!(a, b)` with optional context format.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(*a != *b, "assertion failed: {:?} == {:?}", a, b);
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(*a != *b, "{} (both {:?})", format!($($fmt)+), a);
    }};
}

/// Uniform choice between strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($s:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![$($crate::strategy::Strategy::boxed($s)),+])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(v in 10u32..20, w in -4i32..4) {
            prop_assert!((10..20).contains(&v));
            prop_assert!((-4..4).contains(&w));
        }

        #[test]
        fn vec_respects_size(xs in prop::collection::vec(any::<u8>(), 0..9)) {
            prop_assert!(xs.len() < 9);
        }

        #[test]
        fn tuples_arrays_and_map(pair in (0u8..10, 0u8..10), arr in [any::<u8>(), any::<u8>()],
                                 mapped in (0u32..5).prop_map(|x| x * 2)) {
            prop_assert!(pair.0 < 10 && pair.1 < 10);
            prop_assert_eq!(arr.len(), 2);
            prop_assert!(mapped % 2 == 0 && mapped < 10);
        }
    }

    #[derive(Debug, Clone, PartialEq)]
    enum Tree {
        Leaf(i32),
        Node(Box<Tree>, Box<Tree>),
    }

    fn depth(t: &Tree) -> usize {
        match t {
            Tree::Leaf(_) => 1,
            Tree::Node(a, b) => 1 + depth(a).max(depth(b)),
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(128))]

        #[test]
        fn recursive_strategies_terminate(
            t in (-10i32..10).prop_map(Tree::Leaf).prop_recursive(4, 24, 2, |inner| {
                prop_oneof![
                    (inner.clone(), inner.clone())
                        .prop_map(|(a, b)| Tree::Node(a.into(), b.into())),
                    (-10i32..10).prop_map(Tree::Leaf),
                ]
            })
        ) {
            prop_assert!(depth(&t) <= 6);
        }
    }

    #[test]
    fn failures_report_case_and_message() {
        let err = std::panic::catch_unwind(|| {
            // No inner #[test]: rustc cannot register tests nested in
            // a fn and warns; we call the generated fn directly.
            proptest! {
                #![proptest_config(ProptestConfig::with_cases(8))]
                fn always_fails(v in 0u32..10) {
                    prop_assert!(v > 100, "v was {v}");
                }
            }
            always_fails();
        })
        .unwrap_err();
        let msg = err.downcast_ref::<String>().expect("string panic");
        assert!(msg.contains("property failed at case 0"), "{msg}");
        assert!(msg.contains("v was"), "{msg}");
    }
}
