//! FSE as a mini-C program for the simulated LEON3 — the paper's
//! double-precision, FFT-heavy workload.
//!
//! Generated from the same tables as the native reference; every
//! floating-point operation appears in the same order as in
//! [`super::native`], so the concealed images match bit-exactly.
//!
//! Memory protocol:
//! * input at `0x4100_0000`: `u32` width, height, iterations, then
//!   width×height image bytes, then width×height mask bytes (1 =
//!   unknown sample);
//! * output at `0x4200_0000`: the concealed image;
//! * emitted word: FNV-1a of the concealed image bytes.

use super::tables::{basis_tables, bit_reverse16, twiddles, GAMMA, RHO};
use crate::pixels::Image;
use std::fmt::Write;

/// Maximum samples per image the static buffers allow.
pub const MAX_SAMPLES: usize = 4096;

fn fmt_f64s(values: &[f64]) -> String {
    let mut s = String::new();
    for v in values {
        let _ = write!(s, "{v:?}, ");
    }
    s
}

/// Generates the FSE mini-C source.
pub fn fse_source() -> String {
    let (wre, wim) = twiddles();
    let (ct, st) = basis_tables();
    let rev = bit_reverse16();
    let mut rev_s = String::new();
    for v in rev {
        let _ = write!(rev_s, "{v}, ");
    }

    format!(
        r#"// Frequency Selective Extrapolation (generated; see nfp-workloads fse::minic)
#define RHO {rho:?}
#define GAMMA {gamma:?}

double WRE[8] = {{ {wre} }};
double WIM[8] = {{ {wim} }};
double CT[16] = {{ {ct} }};
double ST[16] = {{ {st} }};
int REV[16] = {{ {rev_s} }};

uchar img[4096];
uchar msk[4096];
int W; int H;
double wgt[256];
double rsd[256];
double gest[256];
double fre[256];
double fim[256];

void fft16(double* re, double* im, int base, int stride) {{
    for (int i = 0; i < 16; i = i + 1) {{
        int j = REV[i];
        if (j > i) {{
            int ia = base + i * stride;
            int ja = base + j * stride;
            double t = re[ia]; re[ia] = re[ja]; re[ja] = t;
            t = im[ia]; im[ia] = im[ja]; im[ja] = t;
        }}
    }}
    int len = 2;
    while (len <= 16) {{
        int half = len / 2;
        int step = 16 / len;
        int i = 0;
        while (i < 16) {{
            for (int k = 0; k < half; k = k + 1) {{
                double wr = WRE[k * step];
                double wi = WIM[k * step];
                int a = base + (i + k) * stride;
                int b = base + (i + k + half) * stride;
                double tr = re[b] * wr - im[b] * wi;
                double ti = re[b] * wi + im[b] * wr;
                re[b] = re[a] - tr;
                im[b] = im[a] - ti;
                re[a] = re[a] + tr;
                im[a] = im[a] + ti;
            }}
            i = i + len;
        }}
        len = len * 2;
    }}
}}

void fft2d(double* re, double* im) {{
    for (int y = 0; y < 16; y = y + 1) fft16(re, im, y * 16, 1);
    for (int x = 0; x < 16; x = x + 1) fft16(re, im, x, 16);
}}

int bdist1(int v) {{
    if (v < 4) return 4 - v;
    if (v >= 12) return v - 11;
    return 0;
}}

double rho_pow(int d) {{
    double w = 1.0;
    for (int k = 0; k < d; k = k + 1) w = w * RHO;
    return w;
}}

int clip255(int v) {{
    if (v < 0) return 0;
    if (v > 255) return 255;
    return v;
}}

// Extrapolates the lost block at (bx, by). Returns 0 when the block
// has no known support.
int extrapolate_block(int bx, int by, int iterations) {{
    int x0 = bx * 8 - 4;
    int y0 = by * 8 - 4;
    double w00 = 0.0;
    for (int ay = 0; ay < 16; ay = ay + 1) {{
        for (int ax = 0; ax < 16; ax = ax + 1) {{
            int gx = x0 + ax;
            int gy = y0 + ay;
            wgt[ay * 16 + ax] = 0.0;
            rsd[ay * 16 + ax] = 0.0;
            if (msk[gy * W + gx] == 0) {{
                int dx = bdist1(ax);
                int dy = bdist1(ay);
                int d = dx;
                if (dy > d) d = dy;
                double wv = rho_pow(d);
                wgt[ay * 16 + ax] = wv;
                rsd[ay * 16 + ax] = wv * (double)img[gy * W + gx];
                w00 = w00 + wv;
            }}
        }}
    }}
    if (w00 == 0.0) return 0;

    for (int i = 0; i < 256; i = i + 1) gest[i] = 0.0;

    for (int it = 0; it < iterations; it = it + 1) {{
        for (int i = 0; i < 256; i = i + 1) {{
            fre[i] = rsd[i];
            fim[i] = 0.0;
        }}
        fft2d(fre, fim);

        int best = 0;
        double bestmag = -1.0;
        for (int u = 0; u < 16; u = u + 1) {{
            for (int v = 0; v < 16; v = v + 1) {{
                int idx = u * 16 + v;
                double mag = fre[idx] * fre[idx] + fim[idx] * fim[idx];
                if (mag > bestmag) {{
                    bestmag = mag;
                    best = idx;
                }}
            }}
        }}
        if (bestmag <= 0.0) break;
        int u = best / 16;
        int v = best % 16;
        double dcre = GAMMA * fre[best] / w00;
        double dcim = GAMMA * fim[best] / w00;
        int uc = (16 - u) % 16;
        int vc = (16 - v) % 16;
        int selfconj = 0;
        if (uc == u && vc == v) selfconj = 1;

        for (int ay = 0; ay < 16; ay = ay + 1) {{
            for (int ax = 0; ax < 16; ax = ax + 1) {{
                int phase = (u * ay + v * ax) % 16;
                double c = CT[phase];
                double s = ST[phase];
                double contribution;
                if (selfconj != 0) {{
                    contribution = dcre * c - dcim * s;
                }} else {{
                    contribution = 2.0 * (dcre * c - dcim * s);
                }}
                gest[ay * 16 + ax] = gest[ay * 16 + ax] + contribution;
                rsd[ay * 16 + ax] = rsd[ay * 16 + ax] - wgt[ay * 16 + ax] * contribution;
            }}
        }}
    }}

    for (int y = 0; y < 8; y = y + 1) {{
        for (int x = 0; x < 8; x = x + 1) {{
            int gx = bx * 8 + x;
            int gy = by * 8 + y;
            if (msk[gy * W + gx] != 0) {{
                double m = gest[(y + 4) * 16 + (x + 4)] + 0.5;
                img[gy * W + gx] = (uchar)clip255((int)m);
            }}
        }}
    }}
    return 1;
}}

int main() {{
    uint* in = (uint*)0x41000000;
    W = (int)in[0];
    H = (int)in[1];
    int iterations = (int)in[2];
    if (W < 16 || H < 16 || W * H > 4096 || iterations < 1) return 1;
    uchar* pix = (uchar*)0x4100000c;
    int n = W * H;
    for (int i = 0; i < n; i = i + 1) {{
        img[i] = pix[i];
        msk[i] = pix[n + i];
    }}

    int bw = W / 8;
    int bh = H / 8;
    for (int by = 0; by < bh; by = by + 1) {{
        for (int bx = 0; bx < bw; bx = bx + 1) {{
            if (msk[(by * 8) * W + bx * 8] != 0) {{
                if (extrapolate_block(bx, by, iterations) != 0) {{
                    for (int y = 0; y < 8; y = y + 1) {{
                        for (int x = 0; x < 8; x = x + 1) {{
                            msk[(by * 8 + y) * W + bx * 8 + x] = 0;
                        }}
                    }}
                }}
            }}
        }}
    }}

    uchar* out = (uchar*)0x42000000;
    uint fnv = 0x811c9dc5u;
    for (int i = 0; i < n; i = i + 1) {{
        uchar p = img[i];
        out[i] = p;
        fnv = (fnv ^ (uint)p) * 0x01000193u;
    }}
    emit(fnv);
    return 0;
}}
"#,
        rho = RHO,
        gamma = GAMMA,
        wre = fmt_f64s(&wre),
        wim = fmt_f64s(&wim),
        ct = fmt_f64s(&ct),
        st = fmt_f64s(&st),
    )
}

/// Builds the FSE input blob.
pub fn input_blob(img: &Image, mask: &[bool], iterations: u32) -> Vec<u8> {
    assert_eq!(mask.len(), img.width * img.height);
    assert!(img.width * img.height <= MAX_SAMPLES);
    let mut blob = Vec::with_capacity(12 + 2 * mask.len());
    blob.extend_from_slice(&(img.width as u32).to_be_bytes());
    blob.extend_from_slice(&(img.height as u32).to_be_bytes());
    blob.extend_from_slice(&iterations.to_be_bytes());
    blob.extend_from_slice(&img.data);
    blob.extend(mask.iter().map(|&m| m as u8));
    blob
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn source_compiles_in_both_modes() {
        let src = fse_source();
        for mode in [nfp_cc::FloatMode::Hard, nfp_cc::FloatMode::Soft] {
            nfp_cc::compile(&src, &nfp_cc::CompileOptions::new(mode))
                .unwrap_or_else(|e| panic!("{mode:?}: {e}"));
        }
    }

    #[test]
    fn blob_layout() {
        let img = Image::new(16, 16);
        let mask = vec![false; 256];
        let blob = input_blob(&img, &mask, 32);
        assert_eq!(blob.len(), 12 + 512);
        assert_eq!(&blob[8..12], &[0, 0, 0, 32]);
    }
}
