//! Binary instruction decoder (the "decoder" stage of the paper's Fig. 2).
//!
//! [`decode`] never fails: words that do not match any implemented
//! pattern become [`Instr::Illegal`], which the simulator turns into an
//! illegal-instruction trap at execution time, like real hardware.

use crate::cond::{FCond, ICond};
use crate::insn::{AluOp, FpOp, Instr, MemSize, Operand};
use crate::regs::{FReg, Reg};

fn reg(bits: u32) -> Reg {
    Reg::new((bits & 0x1f) as u8)
}

fn freg(bits: u32) -> FReg {
    FReg::new((bits & 0x1f) as u8)
}

fn sign_extend(value: u32, bits: u32) -> i32 {
    let shift = 32 - bits;
    ((value << shift) as i32) >> shift
}

/// Extracts the `i`-selected second operand of a format-3 word.
fn operand(word: u32) -> Operand {
    if word & (1 << 13) != 0 {
        Operand::Imm(sign_extend(word & 0x1fff, 13))
    } else {
        Operand::Reg(reg(word))
    }
}

/// Decodes a 32-bit SPARC V8 instruction word.
pub fn decode(word: u32) -> Instr {
    match word >> 30 {
        0b00 => decode_format2(word),
        0b01 => Instr::Call {
            disp30: sign_extend(word & 0x3fff_ffff, 30),
        },
        0b10 => decode_arith(word),
        _ => decode_mem(word),
    }
}

fn decode_format2(word: u32) -> Instr {
    let op2 = (word >> 22) & 0x7;
    match op2 {
        0b100 => Instr::Sethi {
            rd: reg(word >> 25),
            imm22: word & 0x3f_ffff,
        },
        0b010 => Instr::Branch {
            cond: ICond::from_bits(((word >> 25) & 0xf) as u8),
            annul: word & (1 << 29) != 0,
            disp22: sign_extend(word & 0x3f_ffff, 22),
        },
        0b110 => Instr::FBranch {
            cond: FCond::from_bits(((word >> 25) & 0xf) as u8),
            annul: word & (1 << 29) != 0,
            disp22: sign_extend(word & 0x3f_ffff, 22),
        },
        0b000 => Instr::Unimp {
            const22: word & 0x3f_ffff,
        },
        _ => Instr::Illegal { word },
    }
}

fn decode_arith(word: u32) -> Instr {
    let op3 = ((word >> 19) & 0x3f) as u8;
    let rd = reg(word >> 25);
    let rs1 = reg(word >> 14);
    if let Some(op) = AluOp::from_op3(op3) {
        return Instr::Alu {
            op,
            rd,
            rs1,
            op2: operand(word),
        };
    }
    match op3 {
        0b111000 => Instr::Jmpl {
            rd,
            rs1,
            op2: operand(word),
        },
        0b111100 => Instr::Save {
            rd,
            rs1,
            op2: operand(word),
        },
        0b111101 => Instr::Restore {
            rd,
            rs1,
            op2: operand(word),
        },
        0b111010 => Instr::Ticc {
            cond: ICond::from_bits(((word >> 25) & 0xf) as u8),
            rs1,
            op2: operand(word),
        },
        // rd %y only (ASR 0); other ASRs are unimplemented.
        0b101000 if (word >> 14) & 0x1f == 0 => Instr::RdY { rd },
        0b110000 if (word >> 25) & 0x1f == 0 => Instr::WrY {
            rs1,
            op2: operand(word),
        },
        0b111011 => Instr::Flush {
            rs1,
            op2: operand(word),
        },
        0b110100 => decode_fpop1(word),
        0b110101 => decode_fpop2(word),
        _ => Instr::Illegal { word },
    }
}

fn decode_fpop1(word: u32) -> Instr {
    let opf = ((word >> 5) & 0x1ff) as u16;
    match FpOp::from_opf(opf) {
        Some(op) => Instr::FpOp {
            op,
            rd: freg(word >> 25),
            // Unary ops ignore rs1; normalise the don't-care field so
            // decoding is canonical and disassembly round-trips.
            rs1: if op.is_unary() {
                FReg::new(0)
            } else {
                freg(word >> 14)
            },
            rs2: freg(word),
        },
        None => Instr::Illegal { word },
    }
}

fn decode_fpop2(word: u32) -> Instr {
    let opf = ((word >> 5) & 0x1ff) as u16;
    let (double, exception) = match opf {
        0x51 => (false, false),
        0x52 => (true, false),
        0x55 => (false, true),
        0x56 => (true, true),
        _ => return Instr::Illegal { word },
    };
    Instr::FCmp {
        double,
        exception,
        rs1: freg(word >> 14),
        rs2: freg(word),
    }
}

fn decode_mem(word: u32) -> Instr {
    let op3 = ((word >> 19) & 0x3f) as u8;
    let rd = reg(word >> 25);
    let rs1 = reg(word >> 14);
    let op2 = operand(word);
    let load = |size, signed| Instr::Load {
        size,
        signed,
        rd,
        rs1,
        op2,
    };
    let store = |size| Instr::Store { size, rd, rs1, op2 };
    match op3 {
        0b000000 => load(MemSize::Word, false),
        0b000001 => load(MemSize::Byte, false),
        0b000010 => load(MemSize::Half, false),
        0b000011 => load(MemSize::Double, false),
        0b001001 => load(MemSize::Byte, true),
        0b001010 => load(MemSize::Half, true),
        0b000100 => store(MemSize::Word),
        0b000101 => store(MemSize::Byte),
        0b000110 => store(MemSize::Half),
        0b000111 => store(MemSize::Double),
        0b100000 => Instr::LoadF {
            double: false,
            rd: freg(word >> 25),
            rs1,
            op2,
        },
        0b100011 => Instr::LoadF {
            double: true,
            rd: freg(word >> 25),
            rs1,
            op2,
        },
        0b100100 => Instr::StoreF {
            double: false,
            rd: freg(word >> 25),
            rs1,
            op2,
        },
        0b100111 => Instr::StoreF {
            double: true,
            rd: freg(word >> 25),
            rs1,
            op2,
        },
        _ => Instr::Illegal { word },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::regs::G0;

    #[test]
    fn decodes_nop() {
        // The canonical NOP encoding is 0x01000000 (sethi 0, %g0).
        assert_eq!(decode(0x0100_0000), Instr::NOP);
    }

    #[test]
    fn decodes_add_imm() {
        // add %o0, 42, %o1 = 10 01001 000000 01000 1 0000000101010
        let word = (0b10 << 30) | (9 << 25) | (8 << 14) | (1 << 13) | 42;
        assert_eq!(
            decode(word),
            Instr::Alu {
                op: AluOp::Add,
                rd: Reg::o(1),
                rs1: Reg::o(0),
                op2: Operand::Imm(42),
            }
        );
    }

    #[test]
    fn decodes_negative_simm13() {
        let word = (0b10 << 30) | (9 << 25) | (8 << 14) | (1 << 13) | 0x1fff;
        assert_eq!(
            decode(word),
            Instr::Alu {
                op: AluOp::Add,
                rd: Reg::o(1),
                rs1: Reg::o(0),
                op2: Operand::Imm(-1),
            }
        );
    }

    #[test]
    fn decodes_branch_with_annul() {
        // ba,a -2
        let disp = (-2i32 as u32) & 0x3f_ffff;
        let word = (1 << 29) | (8 << 25) | (0b010 << 22) | disp;
        assert_eq!(
            decode(word),
            Instr::Branch {
                cond: ICond::A,
                annul: true,
                disp22: -2,
            }
        );
    }

    #[test]
    fn decodes_call_negative() {
        let word = (0b01 << 30) | ((-5i32 as u32) & 0x3fff_ffff);
        assert_eq!(decode(word), Instr::Call { disp30: -5 });
    }

    #[test]
    fn decodes_fmuld() {
        let word = (0b10u32 << 30) | (4 << 25) | (0b110100 << 19) | (8 << 14) | (0x4a << 5) | 12;
        assert_eq!(
            decode(word),
            Instr::FpOp {
                op: FpOp::FMulD,
                rd: FReg::new(4),
                rs1: FReg::new(8),
                rs2: FReg::new(12),
            }
        );
    }

    #[test]
    fn decodes_load_store_widths() {
        // ld [%o0 + %o1], %l0
        let word = (0b11u32 << 30) | (16 << 25) | (8 << 14) | 9;
        assert_eq!(
            decode(word),
            Instr::Load {
                size: MemSize::Word,
                signed: false,
                rd: Reg::l(0),
                rs1: Reg::o(0),
                op2: Operand::Reg(Reg::o(1)),
            }
        );
        // stb %l0, [%o0 - 1]
        let word = (0b11u32 << 30) | (16 << 25) | (0b000101 << 19) | (8 << 14) | (1 << 13) | 0x1fff;
        assert_eq!(
            decode(word),
            Instr::Store {
                size: MemSize::Byte,
                rd: Reg::l(0),
                rs1: Reg::o(0),
                op2: Operand::Imm(-1),
            }
        );
    }

    #[test]
    fn unknown_words_are_illegal_not_panic() {
        for word in [0xffff_ffffu32, (0b10 << 30) | (0b101101 << 19)] {
            match decode(word) {
                Instr::Illegal { .. } => {}
                other => panic!("expected Illegal, got {other:?}"),
            }
        }
    }

    #[test]
    fn unimp_zero_word() {
        assert_eq!(decode(0), Instr::Unimp { const22: 0 });
        let _ = G0; // silence unused import in some cfg combinations
    }
}
