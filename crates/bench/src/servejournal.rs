//! Write-ahead **service journal** for the `repro serve` coordinator.
//!
//! The supervisor journal (DESIGN.md §10) makes one *campaign*
//! crash-safe; this module makes the *coordinator* crash-safe. Every
//! state transition the hub cares about — a start, an accepted submit,
//! a lease grant/return, a shard completion, a campaign fin, a cache
//! eviction, a clean drain — is appended as a CRC'd flat-JSON record
//! before the transition is acted on, so `repro serve --resume` can
//! rebuild the hub (in-flight campaigns, completed shards, restart
//! count) from the journal alone.
//!
//! The record discipline is the one `supervisor.rs` established: line 1
//! is a binding header, every event line carries a CRC-32 of its
//! canonical rendering (so a flipped bit in a value *or* in the CRC
//! itself is caught), a newline-less final line is the torn tail of a
//! mid-write kill and is truncated on resume, and corruption anywhere
//! else is a hard typed [`NfpError::Journal`] naming the line.
//!
//! Per-campaign *records* live outside this file: each accepted submit
//! gets a sibling journal at `<path>.c<cid>` in the exact supervisor
//! journal format (header + CRC'd records + fin), written in bulk at
//! each shard completion and deleted once the campaign's fin event
//! lands here — so the service journal stays O(events), not O(plan).

use crate::campaign::CampaignConfig;
use crate::crc::crc32;
use crate::evaluation::Mode;
use crate::flatjson::{esc, parse_flat, Obj};
use crate::serve::CampaignRequest;
use crate::supervisor::with_crc;
use nfp_core::NfpError;
use std::collections::HashSet;
use std::fs::{File, OpenOptions};
use std::io::{BufRead, BufReader, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::Mutex;
use std::time::Duration;

/// Journal schema version. Bump on any incompatible rendering change.
const SERVICE_V: u64 = 1;
/// The `kind` tag on line 1 that distinguishes a service journal from
/// the (header-compatible) campaign journals sitting next to it.
const SERVICE_KIND: &str = "nfp-serve-journal";

fn header_line() -> String {
    format!("{{\"v\":{SERVICE_V},\"kind\":\"{SERVICE_KIND}\"}}")
}

// ---------------------------------------------------------------------
// Canonical event renderings (the bytes each record's CRC covers).
// ---------------------------------------------------------------------

fn start_base() -> String {
    "{\"ev\":\"start\"}".to_string()
}

fn submit_base(cid: u64, req: &CampaignRequest, golden_instret: u64) -> String {
    format!(
        concat!(
            "{{\"ev\":\"submit\",\"cid\":{},\"client\":\"{}\",\"kernel\":\"{}\",",
            "\"mode\":\"{}\",\"injections\":{},\"seed\":{},\"checkpoints\":{},",
            "\"dispatch\":\"{}\",\"escalation\":{},\"wall_ms\":{},\"shards\":{},",
            "\"allow_partial\":{},\"golden_instret\":{}}}"
        ),
        cid,
        esc(&req.client),
        esc(&req.kernel),
        req.mode.suffix(),
        req.campaign.injections,
        req.campaign.seed,
        req.campaign.checkpoints,
        req.campaign.dispatch.as_str(),
        req.campaign.escalation,
        req.campaign.wall.map_or_else(
            || "null".to_string(),
            |d| (d.as_millis() as u64).to_string()
        ),
        req.shards,
        req.allow_partial,
        golden_instret,
    )
}

fn lease_base(cid: u64, shard: u32, attempt: u32) -> String {
    format!("{{\"ev\":\"lease\",\"cid\":{cid},\"shard\":{shard},\"attempt\":{attempt}}}")
}

fn return_base(cid: u64, shard: u32, ok: bool) -> String {
    format!("{{\"ev\":\"return\",\"cid\":{cid},\"shard\":{shard},\"ok\":{ok}}}")
}

fn shard_base(cid: u64, shard: u32) -> String {
    format!("{{\"ev\":\"shard\",\"cid\":{cid},\"shard\":{shard}}}")
}

fn fin_base(cid: u64) -> String {
    format!("{{\"ev\":\"fin\",\"cid\":{cid}}}")
}

fn evict_base(key: &str, bytes: usize) -> String {
    format!(
        "{{\"ev\":\"evict\",\"key\":\"{}\",\"bytes\":{bytes}}}",
        esc(key)
    )
}

fn audit_base(cid: u64, shard: u32, wid: u64, verdict: &str) -> String {
    format!(
        "{{\"ev\":\"audit\",\"cid\":{cid},\"shard\":{shard},\"wid\":{wid},\"verdict\":\"{}\"}}",
        esc(verdict)
    )
}

fn ban_base(wid: u64, strikes: u32) -> String {
    format!("{{\"ev\":\"ban\",\"wid\":{wid},\"strikes\":{strikes}}}")
}

fn invalidate_base(cid: u64, shard: u32) -> String {
    format!("{{\"ev\":\"invalidate\",\"cid\":{cid},\"shard\":{shard}}}")
}

fn drain_base() -> String {
    "{\"ev\":\"drain\"}".to_string()
}

// ---------------------------------------------------------------------
// The append side.
// ---------------------------------------------------------------------

/// An open, flushed-per-record service journal. Shared by reference
/// across the coordinator's connection threads; the mutex serialises
/// appends so records land whole.
pub(crate) struct ServiceJournal {
    path: PathBuf,
    file: Mutex<File>,
}

fn journal_io(path: &Path, detail: String) -> NfpError {
    NfpError::Journal {
        path: path.display().to_string(),
        reason: detail,
    }
}

impl ServiceJournal {
    /// Creates (truncating) a fresh journal with its header line.
    pub(crate) fn create(path: &Path) -> Result<ServiceJournal, NfpError> {
        let mut file = File::create(path)
            .map_err(|e| journal_io(path, format!("cannot create service journal: {e}")))?;
        writeln!(file, "{}", header_line())
            .and_then(|()| file.sync_data())
            .map_err(|e| journal_io(path, format!("cannot write service journal header: {e}")))?;
        Ok(ServiceJournal {
            path: path.to_path_buf(),
            file: Mutex::new(file),
        })
    }

    /// Reopens an existing journal for appending, first truncating the
    /// torn tail a loader identified (`intact_len` bytes survive).
    pub(crate) fn resume(path: &Path, intact_len: u64) -> Result<ServiceJournal, NfpError> {
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .open(path)
            .map_err(|e| journal_io(path, format!("cannot reopen service journal: {e}")))?;
        file.set_len(intact_len)
            .and_then(|_| file.seek(SeekFrom::End(0)))
            .map_err(|e| journal_io(path, format!("cannot truncate torn tail: {e}")))?;
        Ok(ServiceJournal {
            path: path.to_path_buf(),
            file: Mutex::new(file),
        })
    }

    /// The journal's own path (per-campaign records files derive from
    /// it via [`records_path`]).
    pub(crate) fn path(&self) -> &Path {
        &self.path
    }

    fn append(&self, base: String) -> Result<(), NfpError> {
        let mut file = self.file.lock().unwrap_or_else(PoisonedLock::recover);
        writeln!(file, "{}", with_crc(base))
            .and_then(|()| file.flush())
            .map_err(|e| journal_io(&self.path, format!("append failed: {e}")))
    }

    pub(crate) fn start(&self) -> Result<(), NfpError> {
        self.append(start_base())
    }

    pub(crate) fn submit(
        &self,
        cid: u64,
        req: &CampaignRequest,
        golden_instret: u64,
    ) -> Result<(), NfpError> {
        self.append(submit_base(cid, req, golden_instret))
    }

    pub(crate) fn lease(&self, cid: u64, shard: u32, attempt: u32) -> Result<(), NfpError> {
        self.append(lease_base(cid, shard, attempt))
    }

    pub(crate) fn lease_return(&self, cid: u64, shard: u32, ok: bool) -> Result<(), NfpError> {
        self.append(return_base(cid, shard, ok))
    }

    pub(crate) fn shard_done(&self, cid: u64, shard: u32) -> Result<(), NfpError> {
        self.append(shard_base(cid, shard))
    }

    pub(crate) fn fin(&self, cid: u64) -> Result<(), NfpError> {
        self.append(fin_base(cid))
    }

    pub(crate) fn evict(&self, key: &str, bytes: usize) -> Result<(), NfpError> {
        self.append(evict_base(key, bytes))
    }

    /// Journals an audit verdict (`pass`, `convict`, or
    /// `inconclusive`) for one shard's producing worker.
    pub(crate) fn audit(
        &self,
        cid: u64,
        shard: u32,
        wid: u64,
        verdict: &str,
    ) -> Result<(), NfpError> {
        self.append(audit_base(cid, shard, wid, verdict))
    }

    /// Journals a worker blacklisting, with its cumulative strike
    /// count, so `--resume` replays the ban (parole restarts from the
    /// resume instant — wall-clock deadlines don't survive a crash).
    pub(crate) fn ban(&self, wid: u64, strikes: u32) -> Result<(), NfpError> {
        self.append(ban_base(wid, strikes))
    }

    /// Journals the invalidation of a previously completed shard —
    /// written *before* the records file is rewritten, so a crash
    /// between the two still drops the distrusted records on resume.
    pub(crate) fn invalidate(&self, cid: u64, shard: u32) -> Result<(), NfpError> {
        self.append(invalidate_base(cid, shard))
    }

    pub(crate) fn drain(&self) -> Result<(), NfpError> {
        self.append(drain_base())
    }
}

/// `PoisonError` recovery shim: journal appends are single `writeln!`
/// calls, so a panicking peer thread cannot leave the file torn —
/// recover the guard rather than poisoning every later append.
struct PoisonedLock;
impl PoisonedLock {
    fn recover<T>(e: std::sync::PoisonError<T>) -> T {
        e.into_inner()
    }
}

/// The per-campaign records journal sitting next to a service journal:
/// `serve.journal` → `serve.journal.c7` for campaign id 7.
pub(crate) fn records_path(journal: &Path, cid: u64) -> PathBuf {
    let mut os = journal.as_os_str().to_os_string();
    os.push(format!(".c{cid}"));
    PathBuf::from(os)
}

// ---------------------------------------------------------------------
// The load side.
// ---------------------------------------------------------------------

/// A campaign the journal saw submitted but not finished: the resumed
/// coordinator re-runs it headless, re-dispatching only the shards not
/// already completed in its records file.
#[derive(Debug)]
pub(crate) struct OpenCampaign {
    pub(crate) cid: u64,
    /// The submit, with `shards` already resolved to the concrete
    /// count the first run dispatched (journaled post-resolution, so a
    /// resume never re-guesses from live-peer census).
    pub(crate) req: CampaignRequest,
    /// Golden instruction count the first run bound its leases to.
    pub(crate) golden_instret: u64,
    /// Shards whose records landed in the campaign's records file.
    pub(crate) done_shards: Vec<u32>,
}

/// Hub state rebuilt from an intact service journal prefix.
#[derive(Debug)]
pub(crate) struct ServiceState {
    /// Byte length of the intact prefix (everything past it is a torn
    /// mid-write tail, truncated by [`ServiceJournal::resume`]).
    pub(crate) intact_len: u64,
    /// Coordinator starts recorded — a resumed run's restart counter.
    pub(crate) starts: usize,
    /// Whether the journal ends in a clean drain (no open campaigns
    /// were abandoned; a fresh start may still follow).
    pub(crate) drained: bool,
    /// First campaign id not yet used.
    pub(crate) next_cid: u64,
    /// Campaigns submitted but not finished, oldest first.
    pub(crate) open: Vec<OpenCampaign>,
    /// Cache evictions journaled across all starts.
    pub(crate) evictions: usize,
    /// Blacklisted workers as `(wid, strikes)`, last strike count per
    /// wid — the resumed hub re-arms each ban with a fresh parole
    /// deadline derived from the strike count.
    pub(crate) bans: Vec<(u64, u32)>,
}

fn verified(obj: &Obj, base: &str) -> bool {
    obj.u64("crc").and_then(|c| u32::try_from(c).ok()) == Some(crc32(base.as_bytes()))
}

fn parse_submit_event(obj: &Obj) -> Option<(u64, CampaignRequest, u64)> {
    let cid = obj.u64("cid")?;
    let req = CampaignRequest {
        client: obj.str("client")?.to_string(),
        kernel: obj.str("kernel")?.to_string(),
        mode: Mode::from_suffix(obj.str("mode")?)?,
        campaign: CampaignConfig {
            injections: usize::try_from(obj.u64("injections")?).ok()?,
            seed: obj.u64("seed")?,
            checkpoints: usize::try_from(obj.u64("checkpoints")?).ok()?,
            wall: obj.opt_u64("wall_ms")?.map(Duration::from_millis),
            dispatch: nfp_sim::Dispatch::parse(obj.str("dispatch")?)?,
            escalation: u32::try_from(obj.u64("escalation")?).ok()?,
        },
        shards: u32::try_from(obj.u64("shards")?).ok()?,
        allow_partial: obj.bool("allow_partial")?,
    };
    let golden = obj.u64("golden_instret")?;
    Some((cid, req, golden))
}

/// Streams a service journal line-by-line, verifying each record's CRC
/// and event-ordering discipline, and rebuilds the hub state. A torn
/// newline-less final line is tolerated and excluded from `intact_len`;
/// corruption anywhere else is a hard [`NfpError::Journal`] naming the
/// line, so the caller can quarantine the file rather than trust it.
pub(crate) fn load_service_journal(path: &Path) -> Result<ServiceState, NfpError> {
    let shown = path.display().to_string();
    let journal_err = |reason: String| NfpError::Journal {
        path: shown.clone(),
        reason,
    };
    let file = File::open(path).map_err(|e| journal_err(format!("cannot open for resume: {e}")))?;
    let mut reader = BufReader::new(file);
    let mut line = String::new();
    let mut offset = 0u64;
    let mut lineno = 0usize;
    let mut state = ServiceState {
        intact_len: 0,
        starts: 0,
        drained: false,
        next_cid: 0,
        open: Vec::new(),
        evictions: 0,
        bans: Vec::new(),
    };
    let mut finished: HashSet<u64> = HashSet::new();
    loop {
        line.clear();
        let n = reader
            .read_line(&mut line)
            .map_err(|e| journal_err(format!("read failed at byte {offset}: {e}")))?;
        if n == 0 {
            break;
        }
        offset += n as u64;
        lineno += 1;
        if !line.ends_with('\n') {
            // A newline-less final line is the torn tail of a mid-write
            // kill (events are appended and flushed whole): drop it and
            // resume from the intact prefix.
            let at_eof = reader.fill_buf().map_or(true, <[u8]>::is_empty);
            if at_eof {
                break;
            }
            return Err(journal_err(format!("corrupt record at line {lineno}")));
        }
        if lineno == 1 {
            let ok = parse_flat(&line).map(Obj).is_some_and(|obj| {
                obj.str("kind") == Some(SERVICE_KIND) && obj.u64("v") == Some(SERVICE_V)
            });
            if !ok {
                return Err(journal_err(
                    "not a service journal (bad or missing header)".to_string(),
                ));
            }
            state.intact_len = offset;
            continue;
        }
        let corrupt = || journal_err(format!("corrupt record at line {lineno}"));
        let obj = Obj(parse_flat(&line).ok_or_else(corrupt)?);
        let ev = obj.str("ev").ok_or_else(corrupt)?.to_string();
        if state.drained && ev != "start" {
            return Err(journal_err(format!(
                "record at line {lineno} appears after a clean drain"
            )));
        }
        // Events that bind a campaign id must name one the journal has
        // seen submitted and not yet finished.
        let live_cid = |cid: Option<u64>| -> Result<u64, NfpError> {
            let cid = cid.ok_or_else(corrupt)?;
            if finished.contains(&cid) {
                return Err(journal_err(format!(
                    "record at line {lineno} appears after campaign {cid} finished"
                )));
            }
            if !state.open.iter().any(|c| c.cid == cid) {
                return Err(journal_err(format!(
                    "record at line {lineno} names unknown campaign {cid}"
                )));
            }
            Ok(cid)
        };
        match ev.as_str() {
            "start" => {
                if !verified(&obj, &start_base()) {
                    return Err(corrupt());
                }
                state.starts += 1;
                state.drained = false;
            }
            "submit" => {
                let (cid, req, golden) = parse_submit_event(&obj).ok_or_else(corrupt)?;
                if !verified(&obj, &submit_base(cid, &req, golden)) {
                    return Err(corrupt());
                }
                if finished.contains(&cid) || state.open.iter().any(|c| c.cid == cid) {
                    return Err(journal_err(format!(
                        "duplicate submit for campaign {cid} at line {lineno}"
                    )));
                }
                state.next_cid = state.next_cid.max(cid + 1);
                state.open.push(OpenCampaign {
                    cid,
                    req,
                    golden_instret: golden,
                    done_shards: Vec::new(),
                });
            }
            "lease" => {
                let (cid, shard, attempt) = (
                    obj.u64("cid"),
                    obj.u64("shard").ok_or_else(corrupt)?,
                    obj.u64("attempt").ok_or_else(corrupt)?,
                );
                let cid = live_cid(cid)?;
                let (shard, attempt) = (
                    u32::try_from(shard).map_err(|_| corrupt())?,
                    u32::try_from(attempt).map_err(|_| corrupt())?,
                );
                if !verified(&obj, &lease_base(cid, shard, attempt)) {
                    return Err(corrupt());
                }
            }
            "return" => {
                let shard = obj.u64("shard").ok_or_else(corrupt)?;
                let ok = obj.bool("ok").ok_or_else(corrupt)?;
                let cid = live_cid(obj.u64("cid"))?;
                let shard = u32::try_from(shard).map_err(|_| corrupt())?;
                if !verified(&obj, &return_base(cid, shard, ok)) {
                    return Err(corrupt());
                }
            }
            "shard" => {
                let shard = obj.u64("shard").ok_or_else(corrupt)?;
                let cid = live_cid(obj.u64("cid"))?;
                let shard = u32::try_from(shard).map_err(|_| corrupt())?;
                if !verified(&obj, &shard_base(cid, shard)) {
                    return Err(corrupt());
                }
                let open = state
                    .open
                    .iter_mut()
                    .find(|c| c.cid == cid)
                    .expect("live_cid checked membership");
                if open.done_shards.contains(&shard) {
                    return Err(journal_err(format!(
                        "duplicate shard {shard} completion for campaign {cid} at line {lineno}"
                    )));
                }
                open.done_shards.push(shard);
            }
            "fin" => {
                let cid = live_cid(obj.u64("cid"))?;
                if !verified(&obj, &fin_base(cid)) {
                    return Err(corrupt());
                }
                state.open.retain(|c| c.cid != cid);
                finished.insert(cid);
            }
            "evict" => {
                let key = obj.str("key").ok_or_else(corrupt)?;
                let bytes = usize::try_from(obj.u64("bytes").ok_or_else(corrupt)?)
                    .map_err(|_| corrupt())?;
                if !verified(&obj, &evict_base(key, bytes)) {
                    return Err(corrupt());
                }
                state.evictions += 1;
            }
            "audit" => {
                let shard = obj.u64("shard").ok_or_else(corrupt)?;
                let wid = obj.u64("wid").ok_or_else(corrupt)?;
                let verdict = obj.str("verdict").ok_or_else(corrupt)?;
                let cid = live_cid(obj.u64("cid"))?;
                let shard = u32::try_from(shard).map_err(|_| corrupt())?;
                if !verified(&obj, &audit_base(cid, shard, wid, verdict)) {
                    return Err(corrupt());
                }
                if !matches!(verdict, "pass" | "convict" | "inconclusive") {
                    return Err(journal_err(format!(
                        "record at line {lineno} carries unknown audit verdict '{verdict}'"
                    )));
                }
                // Verdicts are evidence, not state: done/undone shard
                // state is carried by `shard` and `invalidate` events.
            }
            "ban" => {
                let wid = obj.u64("wid").ok_or_else(corrupt)?;
                let strikes = u32::try_from(obj.u64("strikes").ok_or_else(corrupt)?)
                    .map_err(|_| corrupt())?;
                if !verified(&obj, &ban_base(wid, strikes)) {
                    return Err(corrupt());
                }
                state.bans.retain(|&(w, _)| w != wid);
                state.bans.push((wid, strikes));
            }
            "invalidate" => {
                let shard = obj.u64("shard").ok_or_else(corrupt)?;
                let cid = live_cid(obj.u64("cid"))?;
                let shard = u32::try_from(shard).map_err(|_| corrupt())?;
                if !verified(&obj, &invalidate_base(cid, shard)) {
                    return Err(corrupt());
                }
                let open = state
                    .open
                    .iter_mut()
                    .find(|c| c.cid == cid)
                    .expect("live_cid checked membership");
                open.done_shards.retain(|&s| s != shard);
            }
            "drain" => {
                if !verified(&obj, &drain_base()) {
                    return Err(corrupt());
                }
                state.drained = true;
            }
            _ => return Err(corrupt()),
        }
        state.intact_len = offset;
    }
    if lineno == 0 {
        return Err(journal_err("journal is empty (no header)".to_string()));
    }
    Ok(state)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shards::quarantined_path;
    use proptest::prelude::*;

    fn tmp(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!(
            "nfp_servejournal_{name}_{}.jsonl",
            std::process::id()
        ))
    }

    fn request() -> CampaignRequest {
        CampaignRequest {
            client: "unit \"client\"".to_string(),
            kernel: "fse".to_string(),
            mode: Mode::Float,
            campaign: CampaignConfig {
                injections: 40,
                seed: 0xfeed,
                checkpoints: 4,
                wall: Some(Duration::from_millis(120_000)),
                dispatch: nfp_sim::Dispatch::default(),
                escalation: 2,
            },
            shards: 4,
            allow_partial: false,
        }
    }

    fn populated(name: &str) -> PathBuf {
        let path = tmp(name);
        let j = ServiceJournal::create(&path).unwrap();
        j.start().unwrap();
        j.submit(0, &request(), 777).unwrap();
        j.lease(0, 0, 1).unwrap();
        j.lease_return(0, 0, true).unwrap();
        j.shard_done(0, 0).unwrap();
        j.shard_done(0, 1).unwrap();
        path
    }

    #[test]
    fn roundtrip_rebuilds_open_campaigns_and_counters() {
        let path = populated("roundtrip");
        let state = load_service_journal(&path).unwrap();
        assert_eq!(state.starts, 1);
        assert_eq!(state.next_cid, 1);
        assert!(!state.drained);
        assert_eq!(state.open.len(), 1);
        let open = &state.open[0];
        assert_eq!(open.cid, 0);
        assert_eq!(open.golden_instret, 777);
        assert_eq!(open.done_shards, vec![0, 1]);
        assert_eq!(open.req.client, "unit \"client\"");
        assert_eq!(open.req.campaign.seed, 0xfeed);
        assert_eq!(open.req.campaign.wall, Some(Duration::from_millis(120_000)));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn fin_closes_the_campaign_and_drain_marks_a_clean_end() {
        let path = populated("fin_drain");
        let j = ServiceJournal::resume(&path, std::fs::metadata(&path).unwrap().len()).unwrap();
        j.evict("fse|f32|40", 1234).unwrap();
        j.fin(0).unwrap();
        j.drain().unwrap();
        let state = load_service_journal(&path).unwrap();
        assert!(state.open.is_empty());
        assert!(state.drained);
        assert_eq!(state.evictions, 1);
        assert_eq!(state.next_cid, 1);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn torn_tail_is_tolerated_and_truncated_on_resume() {
        let path = populated("torn");
        let intact = std::fs::metadata(&path).unwrap().len();
        let mut f = OpenOptions::new().append(true).open(&path).unwrap();
        write!(f, "{{\"ev\":\"shard\",\"cid\":0,\"sha").unwrap();
        drop(f);
        let state = load_service_journal(&path).unwrap();
        assert_eq!(state.intact_len, intact);
        assert_eq!(state.open[0].done_shards, vec![0, 1]);
        // Resume truncates the tail; appends land on a clean prefix.
        let j = ServiceJournal::resume(&path, state.intact_len).unwrap();
        j.shard_done(0, 2).unwrap();
        let state = load_service_journal(&path).unwrap();
        assert_eq!(state.open[0].done_shards, vec![0, 1, 2]);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn bit_flip_is_a_typed_journal_error_naming_the_line() {
        let path = populated("flip");
        let text = std::fs::read_to_string(&path).unwrap();
        // Flip one digit inside the submit record (line 3).
        let flipped = text.replacen("\"injections\":40", "\"injections\":41", 1);
        assert_ne!(text, flipped);
        std::fs::write(&path, flipped).unwrap();
        let err = load_service_journal(&path).unwrap_err();
        match err {
            NfpError::Journal { reason, .. } => {
                assert_eq!(reason, "corrupt record at line 3");
            }
            other => panic!("expected Journal error, got {other:?}"),
        }
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn duplicate_submit_and_unknown_cid_are_rejected() {
        let path = tmp("dup");
        let j = ServiceJournal::create(&path).unwrap();
        j.submit(3, &request(), 1).unwrap();
        j.submit(3, &request(), 1).unwrap();
        let err = load_service_journal(&path).unwrap_err();
        assert!(
            err.to_string().contains("duplicate submit for campaign 3"),
            "{err}"
        );
        let j = ServiceJournal::create(&path).unwrap();
        j.lease(9, 0, 1).unwrap();
        let err = load_service_journal(&path).unwrap_err();
        assert!(err.to_string().contains("unknown campaign 9"), "{err}");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn records_after_fin_or_drain_are_rejected() {
        let path = tmp("postfin");
        let j = ServiceJournal::create(&path).unwrap();
        j.submit(0, &request(), 1).unwrap();
        j.fin(0).unwrap();
        j.shard_done(0, 1).unwrap();
        let err = load_service_journal(&path).unwrap_err();
        assert!(
            err.to_string().contains("after campaign 0 finished"),
            "{err}"
        );
        let j = ServiceJournal::create(&path).unwrap();
        j.drain().unwrap();
        j.submit(0, &request(), 1).unwrap();
        let err = load_service_journal(&path).unwrap_err();
        assert!(err.to_string().contains("after a clean drain"), "{err}");
        // A fresh start after a drain is the one legal continuation.
        let j = ServiceJournal::create(&path).unwrap();
        j.drain().unwrap();
        j.start().unwrap();
        j.submit(0, &request(), 1).unwrap();
        let state = load_service_journal(&path).unwrap();
        assert_eq!(state.open.len(), 1);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn empty_journal_and_wrong_kind_are_typed_errors() {
        let path = tmp("empty");
        std::fs::write(&path, "").unwrap();
        let err = load_service_journal(&path).unwrap_err();
        assert!(err.to_string().contains("journal is empty"), "{err}");
        std::fs::write(&path, "{\"v\":1,\"kind\":\"nfp-campaign-journal\"}\n").unwrap();
        let err = load_service_journal(&path).unwrap_err();
        assert!(err.to_string().contains("not a service journal"), "{err}");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn audit_events_roundtrip_and_rebuild_bans() {
        let path = populated("audit");
        let j = ServiceJournal::resume(&path, std::fs::metadata(&path).unwrap().len()).unwrap();
        j.audit(0, 0, 41, "pass").unwrap();
        j.audit(0, 1, 97, "inconclusive").unwrap();
        j.audit(0, 1, 97, "convict").unwrap();
        j.ban(97, 1).unwrap();
        j.invalidate(0, 1).unwrap();
        j.ban(97, 2).unwrap();
        let state = load_service_journal(&path).unwrap();
        // Shard 1's completion was invalidated by the conviction; shard
        // 0 stays done. The ban carries the *latest* strike count.
        assert_eq!(state.open[0].done_shards, vec![0]);
        assert_eq!(state.bans, vec![(97, 2)]);
        std::fs::remove_file(&path).unwrap();
    }

    proptest! {
        #[test]
        fn audit_event_lines_roundtrip(
            cid in 0u64..4,
            shard in 0u64..64,
            wid in 0u64..u64::MAX,
            strikes in 1u64..1000,
            verdict in 0u64..3,
        ) {
            let path = tmp(&format!("audit_prop_{cid}_{shard}_{wid}_{strikes}_{verdict}"));
            let j = ServiceJournal::create(&path).unwrap();
            for c in 0..=cid {
                j.submit(c, &request(), 1).unwrap();
            }
            let shard = shard as u32;
            let strikes = strikes as u32;
            let verdict = ["pass", "convict", "inconclusive"][verdict as usize];
            j.shard_done(cid, shard).unwrap();
            j.audit(cid, shard, wid, verdict).unwrap();
            j.ban(wid, strikes).unwrap();
            j.invalidate(cid, shard).unwrap();
            let state = load_service_journal(&path).unwrap();
            let open = state.open.iter().find(|c| c.cid == cid).unwrap();
            prop_assert!(open.done_shards.is_empty(), "invalidate must undo shard_done");
            prop_assert_eq!(&state.bans, &vec![(wid, strikes)]);
            std::fs::remove_file(&path).unwrap();
        }
    }

    #[test]
    fn torn_audit_tail_is_tolerated_and_truncated() {
        let path = populated("audit_torn");
        let j = ServiceJournal::resume(&path, std::fs::metadata(&path).unwrap().len()).unwrap();
        j.ban(55, 1).unwrap();
        let intact = std::fs::metadata(&path).unwrap().len();
        let mut f = OpenOptions::new().append(true).open(&path).unwrap();
        write!(f, "{{\"ev\":\"audit\",\"cid\":0,\"shard\":2,\"wi").unwrap();
        drop(f);
        let state = load_service_journal(&path).unwrap();
        assert_eq!(state.intact_len, intact);
        assert_eq!(state.bans, vec![(55, 1)]);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn bit_flipped_audit_event_is_typed_and_names_the_line() {
        let path = tmp("audit_flip");
        let j = ServiceJournal::create(&path).unwrap();
        j.submit(0, &request(), 1).unwrap();
        j.audit(0, 2, 19, "convict").unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        let flipped = text.replacen("\"wid\":19", "\"wid\":18", 1);
        assert_ne!(text, flipped);
        std::fs::write(&path, flipped).unwrap();
        let err = load_service_journal(&path).unwrap_err();
        match err {
            NfpError::Journal { reason, .. } => assert_eq!(reason, "corrupt record at line 3"),
            other => panic!("expected Journal error, got {other:?}"),
        }
        // An unknown verdict string is rejected even with a valid CRC.
        let j = ServiceJournal::create(&path).unwrap();
        j.submit(0, &request(), 1).unwrap();
        j.audit(0, 2, 19, "maybe").unwrap();
        let err = load_service_journal(&path).unwrap_err();
        assert!(err.to_string().contains("unknown audit verdict"), "{err}");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn audit_events_after_fin_are_rejected() {
        let path = tmp("audit_postfin");
        let j = ServiceJournal::create(&path).unwrap();
        j.submit(0, &request(), 1).unwrap();
        j.fin(0).unwrap();
        j.audit(0, 0, 7, "pass").unwrap();
        let err = load_service_journal(&path).unwrap_err();
        assert!(
            err.to_string().contains("after campaign 0 finished"),
            "{err}"
        );
        let j = ServiceJournal::create(&path).unwrap();
        j.submit(0, &request(), 1).unwrap();
        j.fin(0).unwrap();
        j.invalidate(0, 0).unwrap();
        let err = load_service_journal(&path).unwrap_err();
        assert!(
            err.to_string().contains("after campaign 0 finished"),
            "{err}"
        );
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn records_path_and_quarantine_names_derive_from_the_journal() {
        let base = PathBuf::from("/tmp/serve.journal");
        assert_eq!(
            records_path(&base, 7),
            PathBuf::from("/tmp/serve.journal.c7")
        );
        assert_eq!(
            quarantined_path(&base),
            PathBuf::from("/tmp/serve.journal.quarantined")
        );
    }
}
