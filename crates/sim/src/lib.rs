#![warn(missing_docs)]
//! Instruction-set simulator for the SPARC V8 (LEON3-class) core.
//!
//! This is the reproduction's analogue of the paper's OVP-based
//! processor model (Section III): an *instruction-accurate* — not
//! cycle-accurate — functional simulator, extended with per-category
//! instruction counters that are incremented inline in the execution
//! functions ("realized without using callback functions to ensure a
//! high simulation speed").
//!
//! Structure, mirroring Fig. 2 of the paper:
//!
//! * decode — done once per code word by [`machine::Machine`], which
//!   predecodes the loaded image into a flat `Vec<Instr>` (the morpher
//!   analogue: the expensive pattern matching happens once, execution
//!   dispatches on the predecoded form);
//! * disassembler — available through `nfp_sparc::disasm` and the
//!   optional trace hook;
//! * execution — [`exec`] implements the architectural semantics of
//!   every instruction group.
//!
//! The simulator is deterministic and has no notion of time or energy;
//! those are supplied either by the mechanistic model (`nfp-core`,
//! fast) or by the detailed hardware model (`nfp-testbed`, the
//! ground-truth stand-in for the FPGA board).

pub mod blocks;
pub mod bus;
pub mod cpu;
pub mod exec;
pub mod fault;
pub mod machine;
pub mod profile;
pub(crate) mod threaded;

pub use blocks::BlockCache;
pub use bus::{Bus, ConsoleDevice, Device, RamSnapshot, RAM_BASE};
pub use cpu::{Cpu, INT_REG_SPACE, NWINDOWS};
pub use exec::{ExecInfo, NullObserver, Observer, Trap};
pub use fault::{Fault, FaultRng, FaultSpace, FaultTarget};
pub use machine::{
    Checkpoint, Dispatch, DispatchStats, ExitReason, Machine, MachineConfig, RunResult, SimError,
    TrapPolicy, TrapStats, Watchdog,
};
pub use profile::{PcHistogram, Tracer};
