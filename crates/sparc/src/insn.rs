//! Structured instruction representation.
//!
//! [`Instr`] mirrors the grouping a real decoder performs (the paper's
//! Fig. 3: decode entries map onto grouped "morph" functions): all
//! register/immediate ALU variants share one variant parameterised by
//! [`AluOp`], all FPU register-to-register operations share [`FpOp`],
//! and the memory instructions are parameterised by [`MemSize`].

use crate::cond::{FCond, ICond};
use crate::regs::{FReg, Reg};

/// Second source operand of format-3 instructions: a register or a
/// 13-bit sign-extended immediate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Operand {
    /// Register operand (`i = 0`).
    Reg(Reg),
    /// `simm13` immediate operand (`i = 1`), already sign-extended.
    Imm(i32),
}

impl Operand {
    /// True if an immediate fits the signed 13-bit field.
    pub fn fits_simm13(v: i32) -> bool {
        (-4096..=4095).contains(&v)
    }
}

impl From<Reg> for Operand {
    fn from(r: Reg) -> Self {
        Operand::Reg(r)
    }
}

impl From<i32> for Operand {
    /// Immediate operand; the encoder asserts `simm13` range.
    fn from(v: i32) -> Self {
        Operand::Imm(v)
    }
}

/// Integer-unit ALU operations (format 3, `op = 10`), named by their
/// assembler mnemonics.
///
/// The `cc` variants additionally update the integer condition codes.
#[allow(missing_docs)] // variants are the standard SPARC mnemonics
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AluOp {
    Add,
    AddCc,
    AddX,
    AddXCc,
    Sub,
    SubCc,
    SubX,
    SubXCc,
    And,
    AndCc,
    AndN,
    AndNCc,
    Or,
    OrCc,
    OrN,
    OrNCc,
    Xor,
    XorCc,
    XNor,
    XNorCc,
    Sll,
    Srl,
    Sra,
    UMul,
    UMulCc,
    SMul,
    SMulCc,
    UDiv,
    UDivCc,
    SDiv,
    SDivCc,
}

impl AluOp {
    /// True if the operation writes the integer condition codes.
    pub fn sets_cc(self) -> bool {
        use AluOp::*;
        matches!(
            self,
            AddCc
                | AddXCc
                | SubCc
                | SubXCc
                | AndCc
                | AndNCc
                | OrCc
                | OrNCc
                | XorCc
                | XNorCc
                | UMulCc
                | SMulCc
                | UDivCc
                | SDivCc
        )
    }

    /// The `op3` field encoding (SPARC V8 Table F-3).
    pub fn op3(self) -> u8 {
        use AluOp::*;
        match self {
            Add => 0b000000,
            AddCc => 0b010000,
            AddX => 0b001000,
            AddXCc => 0b011000,
            Sub => 0b000100,
            SubCc => 0b010100,
            SubX => 0b001100,
            SubXCc => 0b011100,
            And => 0b000001,
            AndCc => 0b010001,
            AndN => 0b000101,
            AndNCc => 0b010101,
            Or => 0b000010,
            OrCc => 0b010010,
            OrN => 0b000110,
            OrNCc => 0b010110,
            Xor => 0b000011,
            XorCc => 0b010011,
            XNor => 0b000111,
            XNorCc => 0b010111,
            Sll => 0b100101,
            Srl => 0b100110,
            Sra => 0b100111,
            UMul => 0b001010,
            UMulCc => 0b011010,
            SMul => 0b001011,
            SMulCc => 0b011011,
            UDiv => 0b001110,
            UDivCc => 0b011110,
            SDiv => 0b001111,
            SDivCc => 0b011111,
        }
    }

    /// Decodes an `op3` field; `None` if it is not an ALU operation.
    pub fn from_op3(op3: u8) -> Option<Self> {
        use AluOp::*;
        Some(match op3 {
            0b000000 => Add,
            0b010000 => AddCc,
            0b001000 => AddX,
            0b011000 => AddXCc,
            0b000100 => Sub,
            0b010100 => SubCc,
            0b001100 => SubX,
            0b011100 => SubXCc,
            0b000001 => And,
            0b010001 => AndCc,
            0b000101 => AndN,
            0b010101 => AndNCc,
            0b000010 => Or,
            0b010010 => OrCc,
            0b000110 => OrN,
            0b010110 => OrNCc,
            0b000011 => Xor,
            0b010011 => XorCc,
            0b000111 => XNor,
            0b010111 => XNorCc,
            0b100101 => Sll,
            0b100110 => Srl,
            0b100111 => Sra,
            0b001010 => UMul,
            0b011010 => UMulCc,
            0b001011 => SMul,
            0b011011 => SMulCc,
            0b001110 => UDiv,
            0b011110 => UDivCc,
            0b001111 => SDiv,
            0b011111 => SDivCc,
            _ => return None,
        })
    }

    /// Assembler mnemonic.
    pub fn mnemonic(self) -> &'static str {
        use AluOp::*;
        match self {
            Add => "add",
            AddCc => "addcc",
            AddX => "addx",
            AddXCc => "addxcc",
            Sub => "sub",
            SubCc => "subcc",
            SubX => "subx",
            SubXCc => "subxcc",
            And => "and",
            AndCc => "andcc",
            AndN => "andn",
            AndNCc => "andncc",
            Or => "or",
            OrCc => "orcc",
            OrN => "orn",
            OrNCc => "orncc",
            Xor => "xor",
            XorCc => "xorcc",
            XNor => "xnor",
            XNorCc => "xnorcc",
            Sll => "sll",
            Srl => "srl",
            Sra => "sra",
            UMul => "umul",
            UMulCc => "umulcc",
            SMul => "smul",
            SMulCc => "smulcc",
            UDiv => "udiv",
            UDivCc => "udivcc",
            SDiv => "sdiv",
            SDivCc => "sdivcc",
        }
    }
}

/// Floating-point unit operations (`FPop1`, SPARC V8 Table F-6),
/// named by their assembler mnemonics.
#[allow(missing_docs)]
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FpOp {
    /// Move single (copies bits).
    FMovS,
    /// Negate single (flips the sign bit).
    FNegS,
    /// Absolute value single (clears the sign bit).
    FAbsS,
    FSqrtS,
    FSqrtD,
    FAddS,
    FAddD,
    FSubS,
    FSubD,
    FMulS,
    FMulD,
    FDivS,
    FDivD,
    /// Single × single with double result.
    FsMulD,
    /// Convert 32-bit integer to single.
    FiToS,
    /// Convert 32-bit integer to double.
    FiToD,
    /// Convert single to 32-bit integer (round toward zero).
    FsToI,
    /// Convert double to 32-bit integer (round toward zero).
    FdToI,
    /// Convert single to double.
    FsToD,
    /// Convert double to single.
    FdToS,
}

impl FpOp {
    /// The `opf` field encoding.
    pub fn opf(self) -> u16 {
        use FpOp::*;
        match self {
            FMovS => 0x01,
            FNegS => 0x05,
            FAbsS => 0x09,
            FSqrtS => 0x29,
            FSqrtD => 0x2a,
            FAddS => 0x41,
            FAddD => 0x42,
            FSubS => 0x45,
            FSubD => 0x46,
            FMulS => 0x49,
            FMulD => 0x4a,
            FDivS => 0x4d,
            FDivD => 0x4e,
            FsMulD => 0x69,
            FiToS => 0xc4,
            FiToD => 0xc8,
            FsToI => 0xd1,
            FdToI => 0xd2,
            FsToD => 0xc9,
            FdToS => 0xc6,
        }
    }

    /// Decodes an `opf` field; `None` if unknown.
    pub fn from_opf(opf: u16) -> Option<Self> {
        use FpOp::*;
        Some(match opf {
            0x01 => FMovS,
            0x05 => FNegS,
            0x09 => FAbsS,
            0x29 => FSqrtS,
            0x2a => FSqrtD,
            0x41 => FAddS,
            0x42 => FAddD,
            0x45 => FSubS,
            0x46 => FSubD,
            0x49 => FMulS,
            0x4a => FMulD,
            0x4d => FDivS,
            0x4e => FDivD,
            0x69 => FsMulD,
            0xc4 => FiToS,
            0xc8 => FiToD,
            0xd1 => FsToI,
            0xd2 => FdToI,
            0xc9 => FsToD,
            0xc6 => FdToS,
            _ => return None,
        })
    }

    /// True for the unary operations (source in `rs2` only).
    pub fn is_unary(self) -> bool {
        use FpOp::*;
        matches!(
            self,
            FMovS | FNegS | FAbsS | FSqrtS | FSqrtD | FiToS | FiToD | FsToI | FdToI | FsToD | FdToS
        )
    }

    /// Assembler mnemonic.
    pub fn mnemonic(self) -> &'static str {
        use FpOp::*;
        match self {
            FMovS => "fmovs",
            FNegS => "fnegs",
            FAbsS => "fabss",
            FSqrtS => "fsqrts",
            FSqrtD => "fsqrtd",
            FAddS => "fadds",
            FAddD => "faddd",
            FSubS => "fsubs",
            FSubD => "fsubd",
            FMulS => "fmuls",
            FMulD => "fmuld",
            FDivS => "fdivs",
            FDivD => "fdivd",
            FsMulD => "fsmuld",
            FiToS => "fitos",
            FiToD => "fitod",
            FsToI => "fstoi",
            FdToI => "fdtoi",
            FsToD => "fstod",
            FdToS => "fdtos",
        }
    }
}

/// Access width of integer memory instructions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MemSize {
    /// 8-bit.
    Byte,
    /// 16-bit.
    Half,
    /// 32-bit.
    Word,
    /// 64-bit (even/odd register pair, `ldd`/`std`).
    Double,
}

impl MemSize {
    /// Access size in bytes.
    pub fn bytes(self) -> u32 {
        match self {
            MemSize::Byte => 1,
            MemSize::Half => 2,
            MemSize::Word => 4,
            MemSize::Double => 8,
        }
    }
}

/// A decoded SPARC V8 instruction.
#[allow(missing_docs)] // field names follow the architecture manual
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Instr {
    /// `sethi %hi(imm22), rd` — loads `imm22 << 10` into `rd`.
    /// `sethi 0, %g0` is the canonical `nop`.
    Sethi { rd: Reg, imm22: u32 },
    /// Integer conditional branch. `disp22` is in instruction words,
    /// relative to the branch itself.
    Branch {
        cond: ICond,
        annul: bool,
        disp22: i32,
    },
    /// Floating-point conditional branch.
    FBranch {
        cond: FCond,
        annul: bool,
        disp22: i32,
    },
    /// `call disp30` — PC-relative call, writes return address to `%o7`.
    Call { disp30: i32 },
    /// Integer ALU operation `rd = rs1 op operand`.
    Alu {
        op: AluOp,
        rd: Reg,
        rs1: Reg,
        op2: Operand,
    },
    /// `jmpl rs1 + op2, rd` — indirect jump saving the link in `rd`.
    Jmpl { rd: Reg, rs1: Reg, op2: Operand },
    /// `rd %y, rd` — read the multiply/divide Y register.
    RdY { rd: Reg },
    /// `wr rs1 ^ op2, %y` — write the Y register.
    WrY { rs1: Reg, op2: Operand },
    /// `save rs1 + op2, rd` — new register window plus add.
    Save { rd: Reg, rs1: Reg, op2: Operand },
    /// `restore rs1 + op2, rd` — previous register window plus add.
    Restore { rd: Reg, rs1: Reg, op2: Operand },
    /// `t<cond> rs1 + op2` — conditional software trap.
    Ticc { cond: ICond, rs1: Reg, op2: Operand },
    /// Integer load; `sign` selects sign extension for sub-word sizes.
    Load {
        size: MemSize,
        signed: bool,
        rd: Reg,
        rs1: Reg,
        op2: Operand,
    },
    /// Integer store.
    Store {
        size: MemSize,
        rd: Reg,
        rs1: Reg,
        op2: Operand,
    },
    /// FP load (`ld [..], %f` or `ldd [..], %f` pair).
    LoadF {
        double: bool,
        rd: FReg,
        rs1: Reg,
        op2: Operand,
    },
    /// FP store.
    StoreF {
        double: bool,
        rd: FReg,
        rs1: Reg,
        op2: Operand,
    },
    /// FPU register-to-register operation.
    FpOp {
        op: FpOp,
        rd: FReg,
        rs1: FReg,
        rs2: FReg,
    },
    /// FP compare, setting the FSR `fcc` field; `exception` selects the
    /// signalling variant (`fcmpe`).
    FCmp {
        double: bool,
        exception: bool,
        rs1: FReg,
        rs2: FReg,
    },
    /// `unimp const22` — illegal-instruction trap when executed.
    Unimp { const22: u32 },
    /// `flush` — instruction-cache flush; a no-op on the cacheless core.
    Flush { rs1: Reg, op2: Operand },
    /// Any word the decoder does not recognise.
    Illegal { word: u32 },
}

impl Instr {
    /// The canonical `nop` (`sethi 0, %g0`).
    pub const NOP: Instr = Instr::Sethi {
        rd: crate::regs::G0,
        imm22: 0,
    };

    /// True if this instruction is the canonical `nop`.
    pub fn is_nop(&self) -> bool {
        matches!(self, Instr::Sethi { rd, imm22: 0 } if rd.is_zero())
    }

    /// True for control transfers that have an architectural delay slot.
    pub fn has_delay_slot(&self) -> bool {
        matches!(
            self,
            Instr::Branch { .. } | Instr::FBranch { .. } | Instr::Call { .. } | Instr::Jmpl { .. }
        )
    }

    /// True for control-transfer instructions (CTIs): everything with a
    /// delay slot. Basic-block segmentation treats these as block
    /// terminators, with the delay slot belonging to the CTI's block.
    pub fn is_cti(&self) -> bool {
        self.has_delay_slot()
    }

    /// True if straight-line execution cannot continue past this
    /// instruction without the machine layer intervening: CTIs redirect
    /// control and `t<cond>` may raise a software trap. (Trapping
    /// instructions like `unimp` stay "linear" — they abort the run
    /// rather than redirect it.)
    pub fn ends_block(&self) -> bool {
        self.is_cti() || matches!(self, Instr::Ticc { .. })
    }

    /// Fall-through distance of a block-ending instruction, in
    /// instruction words: 2 for CTIs (the fall-through block starts
    /// past the delay slot) but 1 for `t<cond>`, which has *no* delay
    /// slot on SPARC V8 — an untaken soft trap continues at the very
    /// next word. Returns `None` for instructions that do not end a
    /// block.
    pub fn fall_through_words(&self) -> Option<usize> {
        if self.has_delay_slot() {
            Some(2)
        } else if matches!(self, Instr::Ticc { .. }) {
            Some(1)
        } else {
            None
        }
    }

    /// Statically known control-transfer target of a CTI at `pc`:
    /// `Some(target)` for pc-relative branches and calls, `None` for
    /// indirect jumps (`jmpl`) and for non-CTIs. The fall-through
    /// successor of a CTI is always `pc + 8` (past the delay slot).
    pub fn static_target(&self, pc: u32) -> Option<u32> {
        match *self {
            Instr::Branch { disp22, .. } | Instr::FBranch { disp22, .. } => {
                Some(pc.wrapping_add((disp22 as u32).wrapping_mul(4)))
            }
            Instr::Call { disp30 } => Some(pc.wrapping_add((disp30 as u32).wrapping_mul(4))),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::regs::Reg;

    #[test]
    fn nop_detection() {
        assert!(Instr::NOP.is_nop());
        let not_nop = Instr::Sethi {
            rd: Reg::o(0),
            imm22: 0,
        };
        assert!(!not_nop.is_nop());
        let not_nop2 = Instr::Sethi {
            rd: crate::regs::G0,
            imm22: 5,
        };
        assert!(!not_nop2.is_nop());
    }

    #[test]
    fn alu_op3_roundtrip() {
        use AluOp::*;
        for op in [
            Add, AddCc, AddX, AddXCc, Sub, SubCc, SubX, SubXCc, And, AndCc, AndN, AndNCc, Or, OrCc,
            OrN, OrNCc, Xor, XorCc, XNor, XNorCc, Sll, Srl, Sra, UMul, UMulCc, SMul, SMulCc, UDiv,
            UDivCc, SDiv, SDivCc,
        ] {
            assert_eq!(AluOp::from_op3(op.op3()), Some(op));
        }
    }

    #[test]
    fn fpop_opf_roundtrip() {
        use FpOp::*;
        for op in [
            FMovS, FNegS, FAbsS, FSqrtS, FSqrtD, FAddS, FAddD, FSubS, FSubD, FMulS, FMulD, FDivS,
            FDivD, FsMulD, FiToS, FiToD, FsToI, FdToI, FsToD, FdToS,
        ] {
            assert_eq!(FpOp::from_opf(op.opf()), Some(op));
        }
    }

    #[test]
    fn simm13_range() {
        assert!(Operand::fits_simm13(-4096));
        assert!(Operand::fits_simm13(4095));
        assert!(!Operand::fits_simm13(4096));
        assert!(!Operand::fits_simm13(-4097));
    }

    #[test]
    fn delay_slot_classification() {
        assert!(Instr::Call { disp30: 0 }.has_delay_slot());
        assert!(!Instr::NOP.has_delay_slot());
    }

    #[test]
    fn cti_and_block_end_classification() {
        let jmpl = Instr::Jmpl {
            rd: crate::regs::G0,
            rs1: Reg::o(7),
            op2: Operand::Imm(8),
        };
        let ticc = Instr::Ticc {
            cond: crate::cond::ICond::A,
            rs1: crate::regs::G0,
            op2: Operand::Imm(0),
        };
        assert!(jmpl.is_cti() && jmpl.ends_block());
        // `t<cond>` ends a block but is not a CTI (no delay slot).
        assert!(!ticc.is_cti() && ticc.ends_block());
        assert!(!Instr::NOP.ends_block());
        assert!(!Instr::Unimp { const22: 0 }.ends_block());
    }

    #[test]
    fn static_targets() {
        let b = Instr::Branch {
            cond: crate::cond::ICond::E,
            annul: false,
            disp22: -2,
        };
        assert_eq!(b.static_target(0x100), Some(0xf8));
        assert_eq!(Instr::Call { disp30: 3 }.static_target(0x100), Some(0x10c));
        let jmpl = Instr::Jmpl {
            rd: crate::regs::G0,
            rs1: Reg::o(7),
            op2: Operand::Imm(8),
        };
        assert_eq!(jmpl.static_target(0x100), None);
        assert_eq!(Instr::NOP.static_target(0x100), None);
    }
}
