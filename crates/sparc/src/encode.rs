//! Binary instruction encoder — the inverse of [`crate::decode()`].
//!
//! Encoding is canonical: unused fields (the `asi` byte of
//! register-register memory forms, reserved bits) are emitted as zero,
//! so `decode(encode(i)) == i` for every representable instruction.

use crate::insn::{Instr, MemSize, Operand};
use crate::regs::{FReg, Reg};

fn rd_field(r: Reg) -> u32 {
    (r.num() as u32) << 25
}

fn rs1_field(r: Reg) -> u32 {
    (r.num() as u32) << 14
}

fn frd_field(r: FReg) -> u32 {
    (r.num() as u32) << 25
}

fn frs1_field(r: FReg) -> u32 {
    (r.num() as u32) << 14
}

fn op2_field(op2: Operand) -> u32 {
    match op2 {
        Operand::Reg(r) => r.num() as u32,
        Operand::Imm(v) => {
            assert!(Operand::fits_simm13(v), "immediate {v} does not fit simm13");
            (1 << 13) | ((v as u32) & 0x1fff)
        }
    }
}

fn format3(op: u32, rd: u32, op3: u8, rs1: u32, rest: u32) -> u32 {
    (op << 30) | rd | ((op3 as u32) << 19) | rs1 | rest
}

/// Encodes an instruction into its 32-bit word.
///
/// # Panics
/// Panics if an immediate does not fit its field (`simm13`, `disp22`,
/// `disp30`, `imm22`) or on [`Instr::Illegal`], which has no canonical
/// encoding other than the original word it carries.
pub fn encode(instr: Instr) -> u32 {
    match instr {
        Instr::Sethi { rd, imm22 } => {
            assert!(imm22 <= 0x3f_ffff, "imm22 out of range");
            rd_field(rd) | (0b100 << 22) | imm22
        }
        Instr::Branch {
            cond,
            annul,
            disp22,
        } => {
            assert!((-0x20_0000..0x20_0000).contains(&disp22), "disp22 range");
            ((annul as u32) << 29)
                | ((cond.bits() as u32) << 25)
                | (0b010 << 22)
                | ((disp22 as u32) & 0x3f_ffff)
        }
        Instr::FBranch {
            cond,
            annul,
            disp22,
        } => {
            assert!((-0x20_0000..0x20_0000).contains(&disp22), "disp22 range");
            ((annul as u32) << 29)
                | ((cond.bits() as u32) << 25)
                | (0b110 << 22)
                | ((disp22 as u32) & 0x3f_ffff)
        }
        Instr::Call { disp30 } => (0b01 << 30) | ((disp30 as u32) & 0x3fff_ffff),
        Instr::Alu { op, rd, rs1, op2 } => {
            format3(0b10, rd_field(rd), op.op3(), rs1_field(rs1), op2_field(op2))
        }
        Instr::Jmpl { rd, rs1, op2 } => {
            format3(0b10, rd_field(rd), 0b111000, rs1_field(rs1), op2_field(op2))
        }
        Instr::RdY { rd } => format3(0b10, rd_field(rd), 0b101000, 0, 0),
        Instr::WrY { rs1, op2 } => format3(0b10, 0, 0b110000, rs1_field(rs1), op2_field(op2)),
        Instr::Save { rd, rs1, op2 } => {
            format3(0b10, rd_field(rd), 0b111100, rs1_field(rs1), op2_field(op2))
        }
        Instr::Restore { rd, rs1, op2 } => {
            format3(0b10, rd_field(rd), 0b111101, rs1_field(rs1), op2_field(op2))
        }
        Instr::Ticc { cond, rs1, op2 } => format3(
            0b10,
            (cond.bits() as u32) << 25,
            0b111010,
            rs1_field(rs1),
            op2_field(op2),
        ),
        Instr::Flush { rs1, op2 } => format3(0b10, 0, 0b111011, rs1_field(rs1), op2_field(op2)),
        Instr::Load {
            size,
            signed,
            rd,
            rs1,
            op2,
        } => {
            let op3 = match (size, signed) {
                (MemSize::Word, _) => 0b000000,
                (MemSize::Byte, false) => 0b000001,
                (MemSize::Half, false) => 0b000010,
                (MemSize::Double, _) => 0b000011,
                (MemSize::Byte, true) => 0b001001,
                (MemSize::Half, true) => 0b001010,
            };
            format3(0b11, rd_field(rd), op3, rs1_field(rs1), op2_field(op2))
        }
        Instr::Store { size, rd, rs1, op2 } => {
            let op3 = match size {
                MemSize::Word => 0b000100,
                MemSize::Byte => 0b000101,
                MemSize::Half => 0b000110,
                MemSize::Double => 0b000111,
            };
            format3(0b11, rd_field(rd), op3, rs1_field(rs1), op2_field(op2))
        }
        Instr::LoadF {
            double,
            rd,
            rs1,
            op2,
        } => {
            let op3 = if double { 0b100011 } else { 0b100000 };
            format3(0b11, frd_field(rd), op3, rs1_field(rs1), op2_field(op2))
        }
        Instr::StoreF {
            double,
            rd,
            rs1,
            op2,
        } => {
            let op3 = if double { 0b100111 } else { 0b100100 };
            format3(0b11, frd_field(rd), op3, rs1_field(rs1), op2_field(op2))
        }
        Instr::FpOp { op, rd, rs1, rs2 } => format3(
            0b10,
            frd_field(rd),
            0b110100,
            frs1_field(rs1),
            ((op.opf() as u32) << 5) | rs2.num() as u32,
        ),
        Instr::FCmp {
            double,
            exception,
            rs1,
            rs2,
        } => {
            let opf: u32 = match (double, exception) {
                (false, false) => 0x51,
                (true, false) => 0x52,
                (false, true) => 0x55,
                (true, true) => 0x56,
            };
            format3(
                0b10,
                0,
                0b110101,
                frs1_field(rs1),
                (opf << 5) | rs2.num() as u32,
            )
        }
        Instr::Unimp { const22 } => {
            assert!(const22 <= 0x3f_ffff, "const22 out of range");
            const22
        }
        Instr::Illegal { word } => word,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cond::{FCond, ICond};
    use crate::decode::decode;
    use crate::insn::{AluOp, FpOp};

    fn roundtrip(i: Instr) {
        assert_eq!(decode(encode(i)), i, "{i:?}");
    }

    #[test]
    fn roundtrip_representative_instructions() {
        let r = Reg::o(2);
        let s = Reg::l(5);
        let f = FReg::new(6);
        let g = FReg::new(8);
        for i in [
            Instr::NOP,
            Instr::Sethi {
                rd: r,
                imm22: 0x3f_ffff,
            },
            Instr::Branch {
                cond: ICond::Ne,
                annul: false,
                disp22: -100,
            },
            Instr::FBranch {
                cond: FCond::Ul,
                annul: true,
                disp22: 77,
            },
            Instr::Call { disp30: -123456 },
            Instr::Alu {
                op: AluOp::SubCc,
                rd: r,
                rs1: s,
                op2: Operand::Imm(-4096),
            },
            Instr::Alu {
                op: AluOp::Sll,
                rd: r,
                rs1: s,
                op2: Operand::Reg(Reg::g(1)),
            },
            Instr::Jmpl {
                rd: crate::regs::O7,
                rs1: s,
                op2: Operand::Imm(8),
            },
            Instr::RdY { rd: r },
            Instr::WrY {
                rs1: s,
                op2: Operand::Imm(0),
            },
            Instr::Save {
                rd: crate::regs::SP,
                rs1: crate::regs::SP,
                op2: Operand::Imm(-96),
            },
            Instr::Restore {
                rd: Reg::g(0),
                rs1: Reg::g(0),
                op2: Operand::Reg(Reg::g(0)),
            },
            Instr::Ticc {
                cond: ICond::A,
                rs1: Reg::g(0),
                op2: Operand::Imm(5),
            },
            Instr::Flush {
                rs1: r,
                op2: Operand::Imm(0),
            },
            Instr::Load {
                size: MemSize::Half,
                signed: true,
                rd: r,
                rs1: s,
                op2: Operand::Imm(2),
            },
            Instr::Store {
                size: MemSize::Double,
                rd: Reg::o(0),
                rs1: s,
                op2: Operand::Imm(16),
            },
            Instr::LoadF {
                double: true,
                rd: f,
                rs1: s,
                op2: Operand::Imm(-8),
            },
            Instr::StoreF {
                double: false,
                rd: f,
                rs1: s,
                op2: Operand::Reg(r),
            },
            Instr::FpOp {
                op: FpOp::FSqrtD,
                rd: f,
                rs1: FReg::new(0),
                rs2: g,
            },
            Instr::FCmp {
                double: true,
                exception: false,
                rs1: f,
                rs2: g,
            },
            Instr::Unimp { const22: 42 },
        ] {
            roundtrip(i);
        }
    }

    #[test]
    #[should_panic]
    fn oversized_immediate_panics() {
        encode(Instr::Alu {
            op: AluOp::Add,
            rd: Reg::o(0),
            rs1: Reg::o(0),
            op2: Operand::Imm(5000),
        });
    }
}
