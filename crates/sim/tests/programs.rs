//! Simulator integration tests with hand-assembled programs:
//! register-window call chains, memory patterns, FPU sequences, and
//! failure injection.

use nfp_sim::{Machine, MachineConfig, RunResult, SimError, Trap, RAM_BASE};
use nfp_sparc::asm::Assembler;
use nfp_sparc::cond::{FCond, ICond};
use nfp_sparc::{AluOp, FReg, FpOp, MemSize, Operand, Reg};

fn run(words: &[u32]) -> RunResult {
    Machine::boot(words).run(10_000_000).expect("run failed")
}

#[test]
fn windowed_function_calls() {
    // A classic windowed call: callee uses save/restore; caller's %o0
    // becomes callee's %i0.
    let mut a = Assembler::new(RAM_BASE);
    a.mov(21, Reg::o(0));
    a.call("dbl");
    a.nop();
    a.ta(0);
    a.nop();
    a.label("dbl");
    a.push(nfp_sparc::Instr::Save {
        rd: nfp_sparc::regs::SP,
        rs1: nfp_sparc::regs::SP,
        op2: Operand::Imm(-96),
    });
    a.alu(AluOp::Add, Reg::i(0), Operand::Reg(Reg::i(0)), Reg::i(0));
    // return to caller: ret = jmpl %i7 + 8; restore moves %i0 -> %o0
    a.push(nfp_sparc::Instr::Jmpl {
        rd: nfp_sparc::regs::G0,
        rs1: Reg::i(7),
        op2: Operand::Imm(8),
    });
    a.push(nfp_sparc::Instr::Restore {
        rd: Reg::o(0),
        rs1: Reg::i(0),
        op2: Operand::Imm(0),
    });
    let r = run(&a.finish().unwrap());
    assert_eq!(r.exit_code, 42);
}

#[test]
fn deep_recursion_overflows_windows() {
    // save without restore, repeated more than NWINDOWS times, traps.
    let mut a = Assembler::new(RAM_BASE);
    a.mov(20, Reg::g(1));
    a.label("loop");
    a.push(nfp_sparc::Instr::Save {
        rd: nfp_sparc::regs::SP,
        rs1: nfp_sparc::regs::SP,
        op2: Operand::Imm(-96),
    });
    a.alu(AluOp::SubCc, Reg::g(1), 1, Reg::g(1));
    a.b(ICond::Ne, "loop");
    a.nop();
    a.ta(0);
    a.nop();
    let mut m = Machine::boot(&a.finish().unwrap());
    match m.run(10_000) {
        Err(SimError::Trap(Trap::WindowOverflow { .. })) => {}
        other => panic!("expected window overflow, got {other:?}"),
    }
}

#[test]
fn memcpy_like_loop() {
    // Copy 64 bytes between two RAM regions and verify via emit.
    let src = RAM_BASE + 0x2000;
    let dst = RAM_BASE + 0x3000;
    let mut a = Assembler::new(RAM_BASE);
    // fill source: src[i] = i*3
    a.set32(src, Reg::l(0));
    a.mov(0, Reg::l(1));
    a.label("fill");
    a.alu(AluOp::SMul, Reg::l(1), 3, Reg::l(2));
    a.st(MemSize::Byte, Reg::l(2), Reg::l(0), Operand::Reg(Reg::l(1)));
    a.alu(AluOp::Add, Reg::l(1), 1, Reg::l(1));
    a.alu(AluOp::SubCc, Reg::l(1), 64, nfp_sparc::regs::G0);
    a.b(ICond::Ne, "fill");
    a.nop();
    // copy
    a.set32(dst, Reg::l(3));
    a.mov(0, Reg::l(1));
    a.label("copy");
    a.ld(
        MemSize::Byte,
        false,
        Reg::l(0),
        Operand::Reg(Reg::l(1)),
        Reg::l(2),
    );
    a.st(MemSize::Byte, Reg::l(2), Reg::l(3), Operand::Reg(Reg::l(1)));
    a.alu(AluOp::Add, Reg::l(1), 1, Reg::l(1));
    a.alu(AluOp::SubCc, Reg::l(1), 64, nfp_sparc::regs::G0);
    a.b(ICond::Ne, "copy");
    a.nop();
    // checksum destination words
    a.mov(0, Reg::l(4));
    a.mov(0, Reg::l(1));
    a.label("sum");
    a.ld(
        MemSize::Word,
        false,
        Reg::l(3),
        Operand::Reg(Reg::l(1)),
        Reg::l(2),
    );
    a.alu(AluOp::Add, Reg::l(4), Operand::Reg(Reg::l(2)), Reg::l(4));
    a.alu(AluOp::Add, Reg::l(1), 4, Reg::l(1));
    a.alu(AluOp::SubCc, Reg::l(1), 64, nfp_sparc::regs::G0);
    a.b(ICond::Ne, "sum");
    a.nop();
    a.set32(nfp_sim::bus::CONSOLE_EMIT, Reg::l(0));
    a.st(MemSize::Word, Reg::l(4), Reg::l(0), 0);
    a.mov(0, Reg::o(0));
    a.ta(0);
    a.nop();
    let r = run(&a.finish().unwrap());
    // Expected: sum of big-endian words of bytes i*3 (mod 256).
    let bytes: Vec<u8> = (0..64u32).map(|i| (i * 3) as u8).collect();
    let expect: u32 = bytes
        .chunks(4)
        .map(|c| u32::from_be_bytes([c[0], c[1], c[2], c[3]]))
        .fold(0u32, |acc, w| acc.wrapping_add(w));
    assert_eq!(r.words, vec![expect]);
}

#[test]
fn fpu_pipeline_sequence() {
    // d = sqrt(3*3 + 4*4) computed with FPU instructions.
    let mut a = Assembler::new(RAM_BASE);
    a.sethi_hi("c3", Reg::l(0));
    a.or_lo("c3", Reg::l(0));
    a.lddf(Reg::l(0), 0, FReg::new(0));
    a.lddf(Reg::l(0), 8, FReg::new(2));
    a.fpop(FpOp::FMulD, FReg::new(0), FReg::new(0), FReg::new(4)); // 9
    a.fpop(FpOp::FMulD, FReg::new(2), FReg::new(2), FReg::new(6)); // 16
    a.fpop(FpOp::FAddD, FReg::new(4), FReg::new(6), FReg::new(8)); // 25
    a.fpop(FpOp::FSqrtD, FReg::new(0), FReg::new(8), FReg::new(10)); // 5
                                                                     // compare against 5.0 and branch
    a.lddf(Reg::l(0), 16, FReg::new(12));
    a.push(nfp_sparc::Instr::FCmp {
        double: true,
        exception: false,
        rs1: FReg::new(10),
        rs2: FReg::new(12),
    });
    a.nop();
    a.fb(FCond::E, "equal");
    a.nop();
    a.mov(1, Reg::o(0));
    a.ta(0);
    a.nop();
    a.label("equal");
    a.mov(0, Reg::o(0));
    a.ta(0);
    a.nop();
    if a.here() % 2 == 1 {
        a.word(0);
    }
    a.label("c3");
    let b3 = 3.0f64.to_bits();
    let b4 = 4.0f64.to_bits();
    let b5 = 5.0f64.to_bits();
    a.word((b3 >> 32) as u32).word(b3 as u32);
    a.word((b4 >> 32) as u32).word(b4 as u32);
    a.word((b5 >> 32) as u32).word(b5 as u32);
    let r = run(&a.finish().unwrap());
    assert_eq!(r.exit_code, 0, "sqrt(25) == 5.0 branch not taken");
}

#[test]
fn misaligned_access_traps() {
    let mut a = Assembler::new(RAM_BASE);
    a.set32(RAM_BASE + 0x1001, Reg::l(0));
    a.ld(MemSize::Word, false, Reg::l(0), 0, Reg::l(1));
    a.ta(0);
    a.nop();
    let mut m = Machine::boot(&a.finish().unwrap());
    assert!(matches!(
        m.run(100),
        Err(SimError::Trap(Trap::Misaligned { .. }))
    ));
}

#[test]
fn unmapped_access_traps() {
    let mut a = Assembler::new(RAM_BASE);
    a.set32(0x1000_0000, Reg::l(0));
    a.ld(MemSize::Word, false, Reg::l(0), 0, Reg::l(1));
    a.ta(0);
    a.nop();
    let mut m = Machine::boot(&a.finish().unwrap());
    assert!(matches!(
        m.run(100),
        Err(SimError::Trap(Trap::Unmapped { .. }))
    ));
}

#[test]
fn division_by_zero_traps() {
    let mut a = Assembler::new(RAM_BASE);
    a.mov(5, Reg::l(0));
    a.mov(0, Reg::l(1));
    a.push(nfp_sparc::Instr::WrY {
        rs1: nfp_sparc::regs::G0,
        op2: Operand::Imm(0),
    });
    a.alu(AluOp::UDiv, Reg::l(0), Operand::Reg(Reg::l(1)), Reg::l(2));
    a.ta(0);
    a.nop();
    let mut m = Machine::boot(&a.finish().unwrap());
    assert!(matches!(
        m.run(100),
        Err(SimError::Trap(Trap::DivZero { .. }))
    ));
}

#[test]
fn annulled_delay_slots_do_not_execute() {
    // ba,a over an instruction that would corrupt the result.
    let mut a = Assembler::new(RAM_BASE);
    a.mov(7, Reg::o(0));
    a.b_a(ICond::A, "skip");
    a.mov(99, Reg::o(0)); // annulled: must not run
    a.label("skip");
    a.ta(0);
    a.nop();
    let r = run(&a.finish().unwrap());
    assert_eq!(r.exit_code, 7);
}

#[test]
fn fpu_disabled_machine_rejects_fpu_programs() {
    let mut a = Assembler::new(RAM_BASE);
    a.fpop(FpOp::FAddD, FReg::new(0), FReg::new(2), FReg::new(4));
    a.ta(0);
    a.nop();
    let words = a.finish().unwrap();
    let mut m = Machine::new(MachineConfig {
        fpu_enabled: false,
        ..MachineConfig::default()
    });
    m.load_image(RAM_BASE, &words).expect("image fits in RAM");
    assert!(matches!(
        m.run(100),
        Err(SimError::Trap(Trap::FpDisabled { .. }))
    ));
}

#[test]
fn category_counters_are_exact_for_known_programs() {
    // 5 loads + 5 stores + loop scaffolding, counted precisely.
    let mut a = Assembler::new(RAM_BASE);
    a.set32(RAM_BASE + 0x1000, Reg::l(0));
    for i in 0..5 {
        a.ld(MemSize::Word, false, Reg::l(0), i * 4, Reg::l(1));
        a.st(MemSize::Word, Reg::l(1), Reg::l(0), i * 4 + 256);
    }
    a.mov(0, Reg::o(0));
    a.ta(0);
    a.nop();
    let r = run(&a.finish().unwrap());
    use nfp_sparc::Category;
    assert_eq!(r.counts[Category::MemLoad], 5);
    assert_eq!(r.counts[Category::MemStore], 5);
    assert_eq!(r.counts[Category::Jump], 0);
    assert_eq!(r.counts.total(), r.instret);
}
