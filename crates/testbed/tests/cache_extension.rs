//! Integration tests of the cache extension (E8): the cached testbed
//! must change measured workload behaviour in the direction theory
//! predicts, while leaving the functional result untouched.

use nfp_sim::{Machine, RAM_BASE};
use nfp_sparc::asm::Assembler;
use nfp_sparc::cond::ICond;
use nfp_sparc::{AluOp, MemSize, Operand, Reg};
use nfp_testbed::{CacheConfig, Testbed};

/// A loop reading a small working set (fits the cache).
fn hot_loop(iters: u32) -> Vec<u32> {
    let mut a = Assembler::new(RAM_BASE);
    a.sethi_hi("buf", Reg::l(1));
    a.or_lo("buf", Reg::l(1));
    a.set32(iters, Reg::l(0));
    a.mov(0, Reg::l(2));
    a.label("loop");
    a.alu(AluOp::Add, Reg::l(2), 4, Reg::l(2));
    a.alu(AluOp::And, Reg::l(2), 0x3c, Reg::l(3)); // 64-byte working set
    a.ld(
        MemSize::Word,
        false,
        Reg::l(1),
        Operand::Reg(Reg::l(3)),
        Reg::l(4),
    );
    a.alu(AluOp::SubCc, Reg::l(0), 1, Reg::l(0));
    a.b(ICond::Ne, "loop");
    a.nop();
    a.mov(0, Reg::o(0));
    a.ta(0);
    a.nop();
    if a.here() % 2 == 1 {
        a.word(0);
    }
    a.label("buf");
    for k in 0..16u32 {
        a.word(k);
    }
    a.finish().unwrap()
}

/// A loop streaming over a large region (every line misses).
fn streaming_loop(iters: u32) -> Vec<u32> {
    let mut a = Assembler::new(RAM_BASE);
    a.set32(RAM_BASE + 0x10_0000, Reg::l(1));
    a.set32(iters, Reg::l(0));
    a.mov(0, Reg::l(2));
    a.label("loop");
    // stride of 64 bytes over a 1 MiB window: misses a 4 KiB cache
    a.alu(AluOp::Add, Reg::l(2), 64, Reg::l(2));
    a.set32(0xf_ffff, Reg::l(5));
    a.alu(AluOp::And, Reg::l(2), Operand::Reg(Reg::l(5)), Reg::l(3));
    a.ld(
        MemSize::Word,
        false,
        Reg::l(1),
        Operand::Reg(Reg::l(3)),
        Reg::l(4),
    );
    a.alu(AluOp::SubCc, Reg::l(0), 1, Reg::l(0));
    a.b(ICond::Ne, "loop");
    a.nop();
    a.mov(0, Reg::o(0));
    a.ta(0);
    a.nop();
    a.finish().unwrap()
}

fn measure(testbed: &Testbed, words: &[u32]) -> (f64, f64, u32) {
    let mut machine = Machine::boot(words);
    let r = testbed.run(&mut machine, 11, 1_000_000_000).unwrap();
    (
        r.measurement.time_s,
        r.measurement.energy_j,
        r.run.exit_code,
    )
}

#[test]
fn cache_speeds_up_hot_working_sets() {
    let words = hot_loop(100_000);
    let plain = Testbed::new();
    let cached = Testbed::with_cache(CacheConfig::default());
    let (t_plain, e_plain, c1) = measure(&plain, &words);
    let (t_cached, e_cached, c2) = measure(&cached, &words);
    assert_eq!(c1, 0);
    assert_eq!(c2, 0);
    assert!(
        t_cached < t_plain * 0.75,
        "cache should clearly speed up a hot loop: {t_cached:.3} vs {t_plain:.3}"
    );
    assert!(e_cached < e_plain);
}

#[test]
fn cache_slows_down_streaming_access() {
    let words = streaming_loop(100_000);
    let plain = Testbed::new();
    let cached = Testbed::with_cache(CacheConfig::default());
    let (t_plain, _, _) = measure(&plain, &words);
    let (t_cached, _, _) = measure(&cached, &words);
    assert!(
        t_cached > t_plain,
        "line fills should cost on pure streaming: {t_cached:.3} vs {t_plain:.3}"
    );
}

#[test]
fn functional_results_are_configuration_independent() {
    // The cache is a timing model only: instruction counts and exit
    // codes cannot change.
    let words = hot_loop(10_000);
    let mut m1 = Machine::boot(&words);
    let r1 = Testbed::new().run(&mut m1, 3, 1_000_000_000).unwrap();
    let mut m2 = Machine::boot(&words);
    let r2 = Testbed::with_cache(CacheConfig::default())
        .run(&mut m2, 3, 1_000_000_000)
        .unwrap();
    assert_eq!(r1.run.instret, r2.run.instret);
    assert_eq!(r1.run.exit_code, r2.run.exit_code);
    assert_ne!(r1.totals.cycles, r2.totals.cycles);
}
