//! Umbrella crate for the NFP-estimation reproduction.
//!
//! Re-exports the public APIs of all member crates so examples and
//! integration tests can use a single dependency.

pub use nfp_cc as cc;
pub use nfp_core as core;
pub use nfp_sim as sim;
pub use nfp_sparc as sparc;
pub use nfp_testbed as testbed;
pub use nfp_workloads as workloads;
