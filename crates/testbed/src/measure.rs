//! The measurement chain: power meter and `clock()` model.
//!
//! The paper (Section V) measures time with the C `clock()` function
//! and energy with a power meter. Both instruments are imperfect in
//! characteristic ways that this module reproduces:
//!
//! * the power meter samples at a finite rate; integrating noisy
//!   samples leaves a residual relative error that shrinks with the
//!   square root of the number of samples (long kernels measure more
//!   accurately than short ones);
//! * `clock()` advances in discrete ticks, so a duration is the
//!   difference of two quantised tick counts with a random phase.
//!
//! All randomness is drawn from an explicitly seeded generator so that
//! measurements are reproducible run to run.

use crate::cache::{CacheConfig, CachedHwObserver};
use crate::hw::{HwModel, HwObserver, HwTotals};
use nfp_sim::{Machine, RunResult, SimError};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Power meter and timer characteristics.
#[derive(Debug, Clone)]
pub struct MeterConfig {
    /// Power-meter sampling rate in Hz.
    pub sample_hz: f64,
    /// Relative standard deviation of a single power sample.
    pub sample_sigma: f64,
    /// `clock()` tick length in seconds.
    pub clock_tick_s: f64,
}

impl Default for MeterConfig {
    fn default() -> Self {
        MeterConfig {
            sample_hz: 1_000.0,
            sample_sigma: 0.02,
            clock_tick_s: 1.0e-3,
        }
    }
}

/// One measured quantity pair as the instruments report it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Measurement {
    /// Time reported by the `clock()` model, in seconds.
    pub time_s: f64,
    /// Energy reported by the power-meter model, in joules.
    pub energy_j: f64,
}

/// Result of running a kernel on the testbed.
#[derive(Debug, Clone)]
pub struct MeasuredRun {
    /// Functional result (exit code, console, counters).
    pub run: RunResult,
    /// Ground-truth totals from the hardware model.
    pub totals: HwTotals,
    /// What the instruments reported.
    pub measurement: Measurement,
}

/// The virtual DE2-115 board: hardware model plus instruments, with an
/// optional data cache (the paper's future-work extension, E8).
#[derive(Debug, Clone, Default)]
pub struct Testbed {
    /// Hardware (cycle/energy) model.
    pub hw: HwModel,
    /// Instrument model.
    pub meter: MeterConfig,
    /// When set, the core is synthesised with a D-cache and memory
    /// cost becomes history-dependent.
    pub cache: Option<CacheConfig>,
}

/// A standard normal variate via Box–Muller (avoids an extra
/// distribution dependency).
fn standard_normal(rng: &mut StdRng) -> f64 {
    loop {
        let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
        let u2: f64 = rng.gen_range(0.0..1.0);
        let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
        if z.is_finite() {
            return z;
        }
    }
}

impl Testbed {
    /// A testbed with default hardware and instrument parameters
    /// (cacheless, like the paper's evaluated configuration).
    pub fn new() -> Self {
        Self::default()
    }

    /// A testbed whose core includes a data cache.
    pub fn with_cache(cache: CacheConfig) -> Self {
        Testbed {
            cache: Some(cache),
            ..Self::default()
        }
    }

    /// Runs the machine to completion under the hardware model and
    /// applies the measurement chain. `seed` individualises instrument
    /// noise per kernel (the paper measures each kernel in a separate
    /// session).
    pub fn run(
        &self,
        machine: &mut Machine,
        seed: u64,
        max_instrs: u64,
    ) -> Result<MeasuredRun, SimError> {
        let (run, totals) = match &self.cache {
            None => {
                let mut observer = HwObserver::new(self.hw.clone());
                let run = machine.run_observed(max_instrs, &mut observer)?;
                (run, *observer.totals())
            }
            Some(cache) => {
                let mut observer = CachedHwObserver::new(self.hw.clone(), cache.clone());
                let run = machine.run_observed(max_instrs, &mut observer)?;
                (run, observer.totals())
            }
        };
        let measurement = self.measure(&totals, seed);
        Ok(MeasuredRun {
            run,
            totals,
            measurement,
        })
    }

    /// Applies the instrument model to ground-truth totals.
    pub fn measure(&self, totals: &HwTotals, seed: u64) -> Measurement {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x9e37_79b9_7f4a_7c15);
        let true_time = totals.cycles as f64 / self.hw.clock_hz;

        // clock(): duration = difference of two quantised tick counts
        // with a uniformly random phase.
        let tick = self.meter.clock_tick_s;
        let phase: f64 = rng.gen_range(0.0..tick);
        let start_ticks = (phase / tick).floor();
        let end_ticks = ((phase + true_time) / tick).floor();
        let time_s = (end_ticks - start_ticks) * tick;

        // Power meter: integrating n noisy samples leaves a relative
        // error of sigma/sqrt(n).
        let n_samples = (true_time * self.meter.sample_hz).max(1.0);
        let rel_sigma = self.meter.sample_sigma / n_samples.sqrt();
        let energy_j = totals.energy_j * (1.0 + rel_sigma * standard_normal(&mut rng));

        Measurement { time_s, energy_j }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nfp_sim::RAM_BASE;
    use nfp_sparc::asm::Assembler;
    use nfp_sparc::cond::ICond;
    use nfp_sparc::{AluOp, Reg};

    fn spin_program(iters: u32) -> Vec<u32> {
        let mut a = Assembler::new(RAM_BASE);
        a.set32(iters, Reg::l(0));
        a.label("loop");
        a.alu(AluOp::SubCc, Reg::l(0), 1, Reg::l(0));
        a.b(ICond::Ne, "loop");
        a.nop();
        a.mov(0, Reg::o(0));
        a.ta(0);
        a.nop();
        a.finish().unwrap()
    }

    #[test]
    fn run_accumulates_cycles_and_energy() {
        let tb = Testbed::new();
        let mut m = Machine::boot(&spin_program(1000));
        let r = tb.run(&mut m, 1, 10_000_000).unwrap();
        assert!(r.totals.cycles > 1000 * 10);
        assert!(r.totals.energy_j > 0.0);
        assert_eq!(r.run.exit_code, 0);
        // The measured time is within a tick of the true time.
        let true_t = r.totals.cycles as f64 / tb.hw.clock_hz;
        assert!((r.measurement.time_s - true_t).abs() <= tb.meter.clock_tick_s);
    }

    #[test]
    fn measurement_is_deterministic_per_seed() {
        let tb = Testbed::new();
        let totals = HwTotals {
            cycles: 50_000_000,
            energy_j: 0.5,
            instret: 10_000_000,
            row_misses: 0,
        };
        let a = tb.measure(&totals, 7);
        let b = tb.measure(&totals, 7);
        assert_eq!(a, b);
        let c = tb.measure(&totals, 8);
        assert_ne!(a.energy_j, c.energy_j);
    }

    #[test]
    fn long_runs_measure_energy_more_accurately() {
        let tb = Testbed::new();
        let short = HwTotals {
            cycles: 500_000, // 10 ms
            energy_j: 0.005,
            instret: 100_000,
            row_misses: 0,
        };
        let long = HwTotals {
            cycles: 500_000_000, // 10 s
            energy_j: 5.0,
            instret: 100_000_000,
            row_misses: 0,
        };
        let rel_err = |totals: &HwTotals| {
            let mut worst: f64 = 0.0;
            for seed in 0..50 {
                let m = tb.measure(totals, seed);
                worst = worst.max(((m.energy_j - totals.energy_j) / totals.energy_j).abs());
            }
            worst
        };
        assert!(rel_err(&long) < rel_err(&short));
    }

    #[test]
    fn clock_quantisation_bounds() {
        let tb = Testbed::new();
        let totals = HwTotals {
            cycles: 5_123_456,
            energy_j: 0.05,
            instret: 1_000_000,
            row_misses: 0,
        };
        let true_t = totals.cycles as f64 / tb.hw.clock_hz;
        for seed in 0..100 {
            let m = tb.measure(&totals, seed);
            assert!((m.time_s - true_t).abs() <= tb.meter.clock_tick_s + 1e-12);
            // time is always a whole number of ticks
            let ticks = m.time_s / tb.meter.clock_tick_s;
            assert!((ticks - ticks.round()).abs() < 1e-9);
        }
    }
}
