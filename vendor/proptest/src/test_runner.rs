//! Config, error, and RNG types for the mini-proptest runner.

use std::fmt;

/// Per-test configuration. Only `cases` is modelled.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of random cases each property runs.
    pub cases: u32,
}

impl Default for ProptestConfig {
    /// 64 cases, overridable with the `PROPTEST_CASES` environment
    /// variable (mirroring upstream proptest's env override, which CI
    /// uses to run elevated-case fuzz sweeps).
    fn default() -> Self {
        let cases = std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(64);
        ProptestConfig { cases }
    }
}

impl ProptestConfig {
    /// Config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// A failed (or rejected) test case.
#[derive(Debug, Clone)]
pub struct TestCaseError(String);

impl TestCaseError {
    /// A failing case with the given reason.
    pub fn fail(reason: impl Into<String>) -> Self {
        TestCaseError(reason.into())
    }

    /// A rejected case (treated like a failure by this stand-in).
    pub fn reject(reason: impl Into<String>) -> Self {
        TestCaseError(format!("rejected: {}", reason.into()))
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for TestCaseError {}

/// Deterministic SplitMix64 input generator, seeded from the test name
/// so every property has an independent, reproducible stream.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Generator seeded from an arbitrary label (the test path).
    pub fn for_test(name: &str) -> Self {
        // FNV-1a over the name gives a stable per-test seed.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng { state: h }
    }

    /// Next raw 64 random bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}
