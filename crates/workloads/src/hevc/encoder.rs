//! The native mini-HEVC encoder.
//!
//! Produces the bitstreams the decoders consume. Like any hybrid video
//! encoder it embeds the full decoder loop, so it also yields the
//! expected reconstruction (used to validate both the native and the
//! simulated mini-C decoder bit-exactly).

use super::bitstream::BitWriter;
use super::common::*;
use super::tables::zigzag8;
use crate::pixels::Image;
use nfp_core::NfpError;

fn encode_error(reason: impl Into<String>) -> NfpError {
    NfpError::Workload {
        what: "hevc encoder".into(),
        reason: reason.into(),
    }
}

/// Encoder configurations (the paper's four: intra, lowdelay,
/// lowdelay_P, randomaccess).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Config {
    /// All frames intra.
    Intra,
    /// I then P frames only.
    LowdelayP,
    /// I, P, then bi-predicted frames from the two most recent
    /// reconstructions (low-delay B).
    Lowdelay,
    /// Periodic intra refresh with P and B frames between.
    RandomAccess,
}

impl Config {
    /// All configurations, paper order.
    pub const ALL: [Config; 4] = [
        Config::Intra,
        Config::Lowdelay,
        Config::LowdelayP,
        Config::RandomAccess,
    ];

    /// Name used in kernel identifiers.
    pub fn name(self) -> &'static str {
        match self {
            Config::Intra => "intra",
            Config::Lowdelay => "lowdelay",
            Config::LowdelayP => "lowdelay_P",
            Config::RandomAccess => "randomaccess",
        }
    }
}

/// Frame coding types.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameType {
    /// Intra-only.
    I,
    /// Predicted from the previous reconstruction.
    P,
    /// Bi-predicted from the two most recent reconstructions.
    B,
}

impl FrameType {
    fn code(self) -> u32 {
        match self {
            FrameType::I => 0,
            FrameType::P => 1,
            FrameType::B => 2,
        }
    }
}

/// The frame-type pattern of a configuration.
pub fn frame_types(config: Config, frames: usize) -> Vec<FrameType> {
    (0..frames)
        .map(|t| match config {
            Config::Intra => FrameType::I,
            Config::LowdelayP => {
                if t == 0 {
                    FrameType::I
                } else {
                    FrameType::P
                }
            }
            Config::Lowdelay => match t {
                0 => FrameType::I,
                1 => FrameType::P,
                _ => FrameType::B,
            },
            Config::RandomAccess => match t % 4 {
                0 => FrameType::I,
                1 => FrameType::P,
                _ => FrameType::B,
            },
        })
        .collect()
}

/// Encoder output.
#[derive(Debug, Clone)]
pub struct Encoded {
    /// The bitstream.
    pub bytes: Vec<u8>,
    /// Expected reconstruction (what a conforming decoder outputs).
    pub reconstruction: Vec<Image>,
    /// Expected accumulated activity statistic (see
    /// [`frame_activity`]) over all frames.
    pub activity: f64,
}

fn sad(orig: &Image, bx: usize, by: usize, pred: &Block) -> u32 {
    let mut acc = 0u32;
    for y in 0..8 {
        for x in 0..8 {
            let o = orig.get(bx * 8 + x, by * 8 + y) as i32;
            acc += (o - pred[y * 8 + x]).unsigned_abs();
        }
    }
    acc
}

fn residual_of(orig: &Image, bx: usize, by: usize, pred: &Block) -> Block {
    let mut r = [0i32; 64];
    for y in 0..8 {
        for x in 0..8 {
            r[y * 8 + x] = orig.get(bx * 8 + x, by * 8 + y) as i32 - pred[y * 8 + x];
        }
    }
    r
}

/// Writes quantised levels (zig-zag run/level coding) and returns the
/// dequantised residual the decoder will reconstruct. `None` means all
/// levels quantised to zero (cbf = 0).
fn code_residual(w: &mut BitWriter, residual: &Block, qp: u32) -> Option<Block> {
    let zz = zigzag8();
    let coeffs = forward_transform(residual);
    let levels = quantise(&coeffs, qp);
    let nnz = levels.iter().filter(|&&l| l != 0).count();
    if nnz == 0 {
        w.put_bit(false); // cbf
        return None;
    }
    w.put_bit(true);
    w.put_ue(nnz as u32);
    let mut run = 0u32;
    for &pos in &zz {
        let level = levels[pos];
        if level == 0 {
            run += 1;
        } else {
            w.put_ue(run);
            w.put_ue(level.unsigned_abs() - 1);
            w.put_bit(level < 0);
            run = 0;
        }
    }
    let dq = dequantise(&levels, qp);
    Some(inverse_transform(&dq))
}

/// Motion search: full-pel full search in ±`range`.
fn motion_search(orig: &Image, reference: &Image, bx: usize, by: usize, range: i32) -> (i32, i32) {
    let mut best = (0, 0);
    let mut best_cost = u32::MAX;
    for mvy in -range..=range {
        for mvx in -range..=range {
            let pred = motion_compensate(reference, bx, by, mvx, mvy);
            // Small lagrangian-ish penalty keeps vectors short.
            let cost = sad(orig, bx, by, &pred) + 2 * (mvx.unsigned_abs() + mvy.unsigned_abs());
            if cost < best_cost {
                best_cost = cost;
                best = (mvx, mvy);
            }
        }
    }
    best
}

/// Encodes a sequence. Frame dimensions must be multiples of 8.
pub fn encode(frames: &[Image], config: Config, qp: u32) -> Result<Encoded, NfpError> {
    let Some(first) = frames.first() else {
        return Err(encode_error("empty frame sequence"));
    };
    let width = first.width;
    let height = first.height;
    if !width.is_multiple_of(8) || !height.is_multiple_of(8) {
        return Err(encode_error(format!(
            "dimensions {width}x{height} are not multiples of 8"
        )));
    }
    let bw = width / 8;
    let bh = height / 8;

    let mut w = BitWriter::new();
    w.put_ue(bw as u32);
    w.put_ue(bh as u32);
    w.put_ue(frames.len() as u32);
    w.put_ue(qp);

    let types = frame_types(config, frames.len());
    let mut reconstruction: Vec<Image> = Vec::with_capacity(frames.len());
    let mut activity = 0.0f64;

    for (t, orig) in frames.iter().enumerate() {
        let ftype = types[t];
        w.put_ue(ftype.code());
        let mut rec = Image::new(width, height);
        // References: the one or two most recent reconstructions.
        let ref1 = reconstruction.last();
        let ref2 = if reconstruction.len() >= 2 {
            Some(&reconstruction[reconstruction.len() - 2])
        } else {
            ref1
        };
        for by in 0..bh {
            for bx in 0..bw {
                let (pred, _mode_bits) = match ftype {
                    FrameType::I => {
                        let n = IntraNeighbours::gather(&rec, bx, by);
                        let mut best_mode = IntraMode::Dc;
                        let mut best_cost = u32::MAX;
                        for mode in IntraMode::ALL {
                            let p = intra_predict(mode, &n);
                            let cost = sad(orig, bx, by, &p);
                            if cost < best_cost {
                                best_cost = cost;
                                best_mode = mode;
                            }
                        }
                        w.put_ue(best_mode.code());
                        (intra_predict(best_mode, &n), 0)
                    }
                    FrameType::P => {
                        let reference = ref1.ok_or_else(|| {
                            encode_error(format!("frame {t}: P frame without a reference"))
                        })?;
                        let (mvx, mvy) = motion_search(orig, reference, bx, by, 7);
                        w.put_se(mvx);
                        w.put_se(mvy);
                        (motion_compensate(reference, bx, by, mvx, mvy), 0)
                    }
                    FrameType::B => {
                        let r1 = ref1.ok_or_else(|| {
                            encode_error(format!("frame {t}: B frame without references"))
                        })?;
                        let r2 = ref2.ok_or_else(|| {
                            encode_error(format!("frame {t}: B frame without references"))
                        })?;
                        let (mvx, mvy) = motion_search(orig, r1, bx, by, 7);
                        w.put_se(mvx);
                        w.put_se(mvy);
                        let p1 = motion_compensate(r1, bx, by, mvx, mvy);
                        let p2 = motion_compensate(r2, bx, by, mvx, mvy);
                        (average_blocks(&p1, &p2), 0)
                    }
                };
                let residual = residual_of(orig, bx, by, &pred);
                let decoded_residual = code_residual(&mut w, &residual, qp).unwrap_or([0; 64]);
                reconstruct(&mut rec, bx, by, &pred, &decoded_residual);
            }
        }
        deblock(&mut rec, qp);
        activity += frame_activity(&rec);
        reconstruction.push(rec);
    }

    Ok(Encoded {
        bytes: w.finish(),
        reconstruction,
        activity,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pixels::psnr;
    use crate::synth::{test_sequence, Scene};

    #[test]
    fn encoding_is_deterministic() {
        let frames = test_sequence(Scene::MovingObject, 32, 24, 3);
        let a = encode(&frames, Config::Lowdelay, 32).expect("encode");
        let b = encode(&frames, Config::Lowdelay, 32).expect("encode");
        assert_eq!(a.bytes, b.bytes);
        assert_eq!(a.activity.to_bits(), b.activity.to_bits());
    }

    #[test]
    fn low_qp_gives_higher_fidelity_and_more_bits() {
        let frames = test_sequence(Scene::MovingObject, 32, 24, 3);
        let hi_q = encode(&frames, Config::Intra, 10).expect("encode");
        let lo_q = encode(&frames, Config::Intra, 45).expect("encode");
        assert!(hi_q.bytes.len() > lo_q.bytes.len());
        let p_hi = psnr(&frames[1], &hi_q.reconstruction[1]);
        let p_lo = psnr(&frames[1], &lo_q.reconstruction[1]);
        assert!(
            p_hi > p_lo + 5.0,
            "QP10 ({p_hi:.1} dB) should beat QP45 ({p_lo:.1} dB)"
        );
        assert!(
            p_hi > 34.0,
            "QP10 should be near-transparent, got {p_hi:.1} dB"
        );
    }

    #[test]
    fn inter_configs_compress_motion_better_than_intra() {
        let frames = test_sequence(Scene::GradientPan, 32, 24, 4);
        let intra = encode(&frames, Config::Intra, 32).expect("encode");
        let inter = encode(&frames, Config::LowdelayP, 32).expect("encode");
        assert!(
            inter.bytes.len() < intra.bytes.len(),
            "P frames ({}) should beat all-intra ({})",
            inter.bytes.len(),
            intra.bytes.len()
        );
    }

    #[test]
    fn frame_type_patterns() {
        assert_eq!(
            frame_types(Config::RandomAccess, 6),
            [
                FrameType::I,
                FrameType::P,
                FrameType::B,
                FrameType::B,
                FrameType::I,
                FrameType::P
            ]
        );
        assert_eq!(
            frame_types(Config::Lowdelay, 4),
            [FrameType::I, FrameType::P, FrameType::B, FrameType::B]
        );
        assert!(frame_types(Config::Intra, 3)
            .iter()
            .all(|&t| t == FrameType::I));
    }

    #[test]
    fn all_configs_encode_all_scenes() {
        for scene in Scene::ALL {
            let frames = test_sequence(scene, 32, 24, 4);
            for config in Config::ALL {
                let enc = encode(&frames, config, 32).expect("encode");
                assert!(!enc.bytes.is_empty());
                assert_eq!(enc.reconstruction.len(), 4);
            }
        }
    }
}
