//! Seeded single-event-upset (SEU) fault injection.
//!
//! A fault is one transient bit flip in architectural state — integer
//! or FP register file, condition codes, the Y register, a RAM word, or
//! a word of the predecoded instruction stream — scheduled at a chosen
//! dynamic instruction index. Campaigns draw faults from a
//! [`FaultSpace`] with a deterministic generator, so the same seed
//! always produces the same plan, independent of host platform or
//! thread scheduling.
//!
//! Injection composes with [`Machine::checkpoint`] /
//! [`Machine::restore`]: register and RAM flips are rewound by the
//! checkpoint mechanism alone, while instruction-stream flips also
//! patch the predecoded image and return an [`Undo`] that must be
//! applied before the machine is reused. Code flips and undos route
//! through [`Machine::patch_code_word`], which also invalidates the
//! block-batched accounting cache, so campaigns run safely in block
//! mode: the next run re-segments the (possibly corrupted) image.

use crate::machine::{Machine, SimError};
use nfp_sparc::cond::FccValue;
use nfp_sparc::{Category, Instr};
use std::fmt;

/// Deterministic 64-bit generator (splitmix64) used for fault-plan
/// generation. Deliberately independent of any external RNG crate so a
/// campaign seed means the same thing everywhere.
#[derive(Debug, Clone)]
pub struct FaultRng(u64);

impl FaultRng {
    /// A generator with the given seed.
    pub fn new(seed: u64) -> Self {
        FaultRng(seed)
    }

    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform draw in `0..n` (`n` must be non-zero).
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        self.next_u64() % n
    }
}

/// Where a transient bit flip lands.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultTarget {
    /// Integer register file, addressed by flat index (see
    /// [`Cpu::flat_get`](crate::cpu::Cpu::flat_get)).
    IntReg {
        /// Flat register index in `0..INT_REG_SPACE`.
        index: u8,
        /// Bit position in `0..32`.
        bit: u8,
    },
    /// FP register file (`%f0`–`%f31`).
    FpReg {
        /// FP register number.
        index: u8,
        /// Bit position in `0..32`.
        bit: u8,
    },
    /// Integer condition codes: bit 0 = carry, 1 = overflow, 2 = zero,
    /// 3 = negative (PSR `icc` order).
    Icc {
        /// Bit position in `0..4`.
        bit: u8,
    },
    /// The multiply/divide Y register.
    YReg {
        /// Bit position in `0..32`.
        bit: u8,
    },
    /// The 2-bit FP condition code in the FSR.
    Fcc {
        /// Bit position in `0..2`.
        bit: u8,
    },
    /// A word of RAM.
    Ram {
        /// Word-aligned RAM address.
        addr: u32,
        /// Bit position in `0..32`.
        bit: u8,
    },
    /// A word of the predecoded instruction stream (flips both the RAM
    /// copy and the predecoded form).
    Code {
        /// Instruction index into the loaded image.
        index: u32,
        /// Bit position in `0..32`.
        bit: u8,
    },
}

impl fmt::Display for FaultTarget {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultTarget::IntReg { index, bit } => write!(f, "ireg[{index}] bit {bit}"),
            FaultTarget::FpReg { index, bit } => write!(f, "%f{index} bit {bit}"),
            FaultTarget::Icc { bit } => write!(f, "icc bit {bit}"),
            FaultTarget::YReg { bit } => write!(f, "%y bit {bit}"),
            FaultTarget::Fcc { bit } => write!(f, "fcc bit {bit}"),
            FaultTarget::Ram { addr, bit } => write!(f, "ram[0x{addr:08x}] bit {bit}"),
            FaultTarget::Code { index, bit } => write!(f, "code[{index}] bit {bit}"),
        }
    }
}

/// A scheduled fault: flip `target` once `at` instructions have
/// retired.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Fault {
    /// Dynamic instruction index of the injection point.
    pub at: u64,
    /// The bit to flip.
    pub target: FaultTarget,
}

impl fmt::Display for Fault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} @ instret {}", self.target, self.at)
    }
}

/// The sampleable fault universe for one workload: how long the golden
/// run is, how large the image is, which RAM regions hold live data,
/// and whether FP state exists.
#[derive(Debug, Clone)]
pub struct FaultSpace {
    /// Injection instants are drawn from `0..max_instret` (normally the
    /// golden run's dynamic instruction count).
    pub max_instret: u64,
    /// Instructions in the loaded image.
    pub code_len: u32,
    /// `(addr, len)` byte ranges RAM upsets are aimed at — typically
    /// the pages the golden run actually touched plus the boot images,
    /// so flips land in live data instead of the untouched bulk of a
    /// 64 MiB RAM. Sampled addresses are word-aligned.
    pub ram_ranges: Vec<(u32, u32)>,
    /// Whether FP registers and `fcc` are part of the space.
    pub fp: bool,
}

impl FaultSpace {
    /// Draws one fault. Target classes are weighted roughly by how much
    /// state they expose (register file and RAM dominate), with every
    /// class getting some coverage.
    pub fn sample(&self, rng: &mut FaultRng) -> Fault {
        let at = if self.max_instret > 0 {
            rng.below(self.max_instret)
        } else {
            0
        };
        // (class id, weight) for the classes available in this space.
        let mut classes: Vec<(u8, u64)> = vec![(0, 4), (2, 1), (3, 1)];
        if self.fp {
            classes.push((1, 2));
            classes.push((4, 1));
        }
        if !self.ram_ranges.is_empty() {
            classes.push((5, 4));
        }
        if self.code_len > 0 {
            classes.push((6, 3));
        }
        let total: u64 = classes.iter().map(|&(_, w)| w).sum();
        let mut pick = rng.below(total);
        let mut class = classes[0].0;
        for &(c, w) in &classes {
            if pick < w {
                class = c;
                break;
            }
            pick -= w;
        }
        let target = match class {
            0 => FaultTarget::IntReg {
                index: rng.below(crate::cpu::INT_REG_SPACE as u64) as u8,
                bit: rng.below(32) as u8,
            },
            1 => FaultTarget::FpReg {
                index: rng.below(32) as u8,
                bit: rng.below(32) as u8,
            },
            2 => FaultTarget::Icc {
                bit: rng.below(4) as u8,
            },
            3 => FaultTarget::YReg {
                bit: rng.below(32) as u8,
            },
            4 => FaultTarget::Fcc {
                bit: rng.below(2) as u8,
            },
            5 => {
                // Weight ranges by their word counts.
                let words: Vec<u64> = self
                    .ram_ranges
                    .iter()
                    .map(|&(_, l)| (l / 4) as u64)
                    .collect();
                let total_words: u64 = words.iter().sum::<u64>().max(1);
                let mut w = rng.below(total_words);
                let mut addr = self.ram_ranges[0].0;
                for (&(base, _), &n) in self.ram_ranges.iter().zip(&words) {
                    if w < n {
                        addr = base + (w as u32) * 4;
                        break;
                    }
                    w -= n;
                }
                FaultTarget::Ram {
                    addr: addr & !3,
                    bit: rng.below(32) as u8,
                }
            }
            _ => FaultTarget::Code {
                index: rng.below(self.code_len as u64) as u32,
                bit: rng.below(32) as u8,
            },
        };
        Fault { at, target }
    }
}

/// Generates a campaign plan of `n` faults, sorted by injection
/// instant (ties keep draw order). Sorting lets a campaign sweep the
/// golden run forward, restoring from the nearest earlier checkpoint.
pub fn plan(space: &FaultSpace, n: usize, seed: u64) -> Vec<Fault> {
    let mut rng = FaultRng::new(seed);
    let mut faults: Vec<Fault> = (0..n).map(|_| space.sample(&mut rng)).collect();
    faults.sort_by_key(|f| f.at);
    faults
}

/// What [`inject`] changed beyond checkpoint-tracked state. Must be
/// passed to [`undo`] before the machine replays another fault.
#[derive(Debug, Clone, Copy)]
pub enum Undo {
    /// Checkpoint restore fully rewinds this fault.
    None,
    /// The predecoded image was patched; the original word must be
    /// patched back (the RAM copy is checkpoint-tracked, the predecode
    /// is not).
    Code {
        /// Patched instruction index.
        index: usize,
        /// The pre-fault instruction word.
        old_word: u32,
        /// The pre-fault *predecode* entry, restored verbatim. It is
        /// captured rather than re-derived from `old_word` because the
        /// two can disagree: `old_word` is the runtime RAM value, which
        /// the kernel may have overwritten (data words live inside the
        /// image too), while the predecode holds the boot decode. An
        /// undo that re-decoded RAM would leave the entry permanently
        /// drifted, so replaying the same fault twice on one rig would
        /// attribute two different categories — breaking the invariant
        /// that a replay is a pure function of the fault, which the
        /// serve-layer audit tier relies on to convict lying workers.
        old_entry: (Instr, Category),
    },
}

/// Flips the targeted bit in `m`'s state. Register, condition-code and
/// RAM flips are reverted by restoring a checkpoint taken earlier;
/// instruction-stream flips additionally require [`undo`].
pub fn inject(m: &mut Machine, fault: &Fault) -> Result<Undo, SimError> {
    match fault.target {
        FaultTarget::IntReg { index, bit } => {
            let v = m.cpu.flat_get(index as usize);
            m.cpu.flat_set(index as usize, v ^ (1 << bit));
            Ok(Undo::None)
        }
        FaultTarget::FpReg { index, bit } => {
            m.cpu.f[index as usize] ^= 1 << bit;
            Ok(Undo::None)
        }
        FaultTarget::Icc { bit } => {
            match bit {
                0 => m.cpu.icc.c = !m.cpu.icc.c,
                1 => m.cpu.icc.v = !m.cpu.icc.v,
                2 => m.cpu.icc.z = !m.cpu.icc.z,
                _ => m.cpu.icc.n = !m.cpu.icc.n,
            }
            Ok(Undo::None)
        }
        FaultTarget::YReg { bit } => {
            m.cpu.y ^= 1 << bit;
            Ok(Undo::None)
        }
        FaultTarget::Fcc { bit } => {
            m.cpu.fcc = fcc_from_bits(fcc_to_bits(m.cpu.fcc) ^ (1 << bit));
            Ok(Undo::None)
        }
        FaultTarget::Ram { addr, bit } => {
            let w = m.bus.load32(addr)?;
            m.bus.store32(addr, w ^ (1 << bit))?;
            Ok(Undo::None)
        }
        FaultTarget::Code { index, bit } => {
            let old_entry = m.code_entry(index as usize).ok_or(SimError::BadCodeIndex {
                index: index as usize,
                len: m.code_len(),
            })?;
            let addr = m.code_base().wrapping_add(index * 4);
            let old = m.bus.load32(addr)?;
            m.patch_code_word(index as usize, old ^ (1 << bit))?;
            Ok(Undo::Code {
                index: index as usize,
                old_word: old,
                old_entry,
            })
        }
    }
}

/// Reverts the non-checkpoint-tracked part of an injection.
pub fn undo(m: &mut Machine, u: &Undo) -> Result<(), SimError> {
    if let Undo::Code {
        index,
        old_word,
        old_entry,
    } = u
    {
        m.patch_code_word(*index, *old_word)?;
        m.set_code_entry(*index, *old_entry)?;
    }
    Ok(())
}

/// FSR `fcc` field encoding (SPARC V8: 0 = equal, 1 = less,
/// 2 = greater, 3 = unordered).
fn fcc_to_bits(fcc: FccValue) -> u8 {
    match fcc {
        FccValue::Equal => 0,
        FccValue::Less => 1,
        FccValue::Greater => 2,
        FccValue::Unordered => 3,
    }
}

fn fcc_from_bits(bits: u8) -> FccValue {
    match bits & 3 {
        0 => FccValue::Equal,
        1 => FccValue::Less,
        2 => FccValue::Greater,
        _ => FccValue::Unordered,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bus::RAM_BASE;
    use crate::cpu::INT_REG_SPACE;
    use nfp_sparc::asm::Assembler;
    use nfp_sparc::Reg;

    fn space() -> FaultSpace {
        FaultSpace {
            max_instret: 1000,
            code_len: 64,
            ram_ranges: vec![(RAM_BASE, 4096), (RAM_BASE + 65536, 8192)],
            fp: true,
        }
    }

    #[test]
    fn plans_are_deterministic_and_sorted() {
        let a = plan(&space(), 500, 0xfeed);
        let b = plan(&space(), 500, 0xfeed);
        assert_eq!(a, b);
        assert!(a.windows(2).all(|w| w[0].at <= w[1].at));
        // A different seed produces a different plan.
        assert_ne!(a, plan(&space(), 500, 0xfeee));
    }

    #[test]
    fn samples_stay_in_bounds() {
        let sp = space();
        let mut rng = FaultRng::new(7);
        for _ in 0..2000 {
            let f = sp.sample(&mut rng);
            assert!(f.at < sp.max_instret);
            match f.target {
                FaultTarget::IntReg { index, bit } => {
                    assert!((index as usize) < INT_REG_SPACE && bit < 32)
                }
                FaultTarget::FpReg { index, bit } => assert!(index < 32 && bit < 32),
                FaultTarget::Icc { bit } => assert!(bit < 4),
                FaultTarget::YReg { bit } => assert!(bit < 32),
                FaultTarget::Fcc { bit } => assert!(bit < 2),
                FaultTarget::Ram { addr, bit } => {
                    assert!(addr.is_multiple_of(4) && bit < 32);
                    assert!(
                        sp.ram_ranges
                            .iter()
                            .any(|&(b, l)| addr >= b && addr < b + l),
                        "0x{addr:08x} outside ranges"
                    );
                }
                FaultTarget::Code { index, bit } => assert!(index < sp.code_len && bit < 32),
            }
        }
    }

    #[test]
    fn register_and_ram_faults_rewind_via_checkpoint() {
        let mut a = Assembler::new(RAM_BASE);
        a.mov(0, Reg::o(0));
        a.ta(0);
        a.nop();
        let words = a.finish().unwrap();
        let mut m = Machine::boot(&words);
        m.cpu.set(Reg::g(1), 0x55);
        m.bus.store32(RAM_BASE + 0x100, 0x1234).unwrap();
        let cp = m.checkpoint();

        inject(
            &mut m,
            &Fault {
                at: 0,
                target: FaultTarget::IntReg { index: 0, bit: 3 },
            },
        )
        .unwrap();
        inject(
            &mut m,
            &Fault {
                at: 0,
                target: FaultTarget::Ram {
                    addr: RAM_BASE + 0x100,
                    bit: 0,
                },
            },
        )
        .unwrap();
        assert_eq!(m.cpu.get(Reg::g(1)), 0x55 ^ 8);
        assert_eq!(m.bus.load32(RAM_BASE + 0x100).unwrap(), 0x1235);

        m.restore(&cp);
        assert_eq!(m.cpu.get(Reg::g(1)), 0x55);
        assert_eq!(m.bus.load32(RAM_BASE + 0x100).unwrap(), 0x1234);
    }

    #[test]
    fn code_fault_patches_predecode_and_undoes() {
        let mut a = Assembler::new(RAM_BASE);
        a.mov(1, Reg::o(0));
        a.ta(0);
        a.nop();
        let words = a.finish().unwrap();
        let mut m = Machine::boot(&words);
        let cp = m.checkpoint();
        let golden = m.run(100).unwrap();
        assert_eq!(golden.exit_code, 1);

        m.restore(&cp);
        let fault = Fault {
            at: 0,
            // Flip the immediate of `mov 1, %o0`: bit 1 turns 1 into 3.
            target: FaultTarget::Code { index: 0, bit: 1 },
        };
        let u = inject(&mut m, &fault).unwrap();
        let corrupted = m.run(100).unwrap();
        assert_eq!(corrupted.exit_code, 3, "flip must reach execution");

        m.restore(&cp);
        undo(&mut m, &u).unwrap();
        let again = m.run(100).unwrap();
        assert_eq!(again.exit_code, 1, "undo must restore the program");
    }

    #[test]
    fn undoing_a_code_fault_restores_the_predecode_entry_verbatim() {
        // The boot image carries a word the program overwrites at
        // runtime — the image region holds data too, and a code fault
        // can land on it. The undo must put back the *boot* predecode
        // entry, not decode(runtime word): re-deriving it would drift
        // the entry, and a rig replaying the same fault twice would
        // attribute two different categories (the serve audit tier
        // convicts workers over exactly that comparison).
        let mut a = Assembler::new(RAM_BASE);
        a.mov(0, Reg::o(0));
        a.ta(0);
        a.nop();
        let words = a.finish().unwrap();
        let mut m = Machine::boot(&words);
        // Index of the `nop` we treat as an overwritable image word.
        let index = (words.len() - 1) as u32;
        let boot_entry = m.code_entry(index as usize).unwrap();
        // The "kernel" overwrites it with a word that decodes to a
        // different category (a load).
        let mut asm = Assembler::new(RAM_BASE);
        asm.ld(nfp_sparc::MemSize::Word, false, Reg::g(1), 0, Reg::g(2));
        let load_word = asm.finish().unwrap()[0];
        let addr = m.code_base() + index * 4;
        m.bus.store32(addr, load_word).unwrap();

        let fault = Fault {
            at: 0,
            target: FaultTarget::Code { index, bit: 5 },
        };
        let u = inject(&mut m, &fault).unwrap();
        undo(&mut m, &u).unwrap();
        assert_eq!(
            m.bus.load32(addr).unwrap(),
            load_word,
            "undo must restore the runtime RAM word"
        );
        assert_eq!(
            m.code_entry(index as usize).unwrap(),
            boot_entry,
            "undo must restore the pre-inject predecode entry"
        );
        // Replaying the identical fault now captures the same undo
        // state — the replay is a pure function of the fault.
        let u2 = inject(&mut m, &fault).unwrap();
        undo(&mut m, &u2).unwrap();
        assert_eq!(m.code_entry(index as usize).unwrap(), boot_entry);
    }

    #[test]
    fn code_flip_and_undo_invalidate_block_summaries() {
        // Both the flip and its undo go through `patch_code_word`,
        // which must drop the block cache: a stale per-block category
        // summary would silently miscount every instruction of the
        // patched block under block-batched accounting.
        let mut a = Assembler::new(RAM_BASE);
        a.mov(6, Reg::l(0));
        a.label("loop");
        a.alu(nfp_sparc::AluOp::SubCc, Reg::l(0), 1, Reg::l(0));
        a.b(nfp_sparc::cond::ICond::Ne, "loop");
        a.nop();
        a.mov(0, Reg::o(0));
        a.ta(0);
        a.nop();
        let words = a.finish().unwrap();

        let mut m = Machine::boot(&words);
        let cp = m.checkpoint();
        let golden = m.run(10_000).unwrap();

        // Flip `subcc %l0, 1` into `subcc %l0, 3` (bit 1 of simm13):
        // the loop now skips odd counts and exits after two trips.
        m.restore(&cp);
        let fault = Fault {
            at: 0,
            target: FaultTarget::Code { index: 1, bit: 1 },
        };
        let u = inject(&mut m, &fault).unwrap();
        let corrupted = m.run(10_000).unwrap();
        assert_ne!(
            corrupted.instret, golden.instret,
            "flip must change the dynamic instruction stream"
        );

        // After undo, a block-mode rerun must reproduce the golden
        // counters exactly — stale summaries would not.
        m.restore(&cp);
        undo(&mut m, &u).unwrap();
        let again = m.run(10_000).unwrap();
        assert_eq!(again.counts, golden.counts);
        assert_eq!(again.instret, golden.instret);
    }

    #[test]
    fn fcc_flip_roundtrips() {
        for v in [
            FccValue::Equal,
            FccValue::Less,
            FccValue::Greater,
            FccValue::Unordered,
        ] {
            for bit in 0..2 {
                let flipped = fcc_from_bits(fcc_to_bits(v) ^ (1 << bit));
                assert_ne!(flipped, v);
                assert_eq!(fcc_from_bits(fcc_to_bits(flipped) ^ (1 << bit)), v);
            }
        }
    }
}
