//! Quickstart: estimate time and energy of a program without running
//! it on hardware.
//!
//! The paper's workflow in five steps:
//! 1. write an embedded kernel (mini-C),
//! 2. compile it for the SPARC V8 target,
//! 3. calibrate the per-category cost model on the (virtual) board,
//! 4. count instructions on the fast functional simulator,
//! 5. estimate `Ê = Σ e_c·n_c`, `T̂ = Σ t_c·n_c` — and compare with a
//!    real measurement.
//!
//! Run with: `cargo run --release --example quickstart`

use nfp_repro::cc::{compile, CompileOptions, FloatMode};
use nfp_repro::core::{calibrate, ClassCounter, Paper};
use nfp_repro::sim::Machine;
use nfp_repro::testbed::Testbed;

const KERNEL: &str = r#"
// A small image-processing-flavoured kernel: 3-tap smoothing over a
// synthetic line buffer, with a couple of double operations.
uchar line[256];

int main() {
    // fill the line with a ramp + texture
    for (int i = 0; i < 256; i = i + 1) {
        line[i] = (uchar)(i + ((i * 37) >> 3));
    }
    // 3-tap filter, 64 passes
    for (int pass = 0; pass < 64; pass = pass + 1) {
        for (int i = 1; i < 255; i = i + 1) {
            int v = (line[i - 1] + 2 * line[i] + line[i + 1] + 2) >> 2;
            line[i] = (uchar)v;
        }
    }
    // a little floating-point statistics, like real codecs do
    double acc = 0.0;
    for (int i = 0; i < 256; i = i + 1) {
        double s = (double)line[i];
        acc = acc + s * s;
    }
    double rms = sqrt(acc / 256.0);
    emit((uint)(rms * 1000.0));
    return 0;
}
"#;

fn main() {
    // 1-2. Compile for the FPU-equipped target.
    let program = compile(KERNEL, &CompileOptions::new(FloatMode::Hard)).expect("compile");
    println!(
        "compiled: {} instruction words, {} symbols",
        program.text_words,
        program.symbols.len()
    );

    // 3. Calibrate Table I on the virtual board (differential
    //    reference/test kernels, Eq. 2).
    let testbed = Testbed::new();
    let calibration = calibrate(&testbed, &Paper, 42).expect("calibration");
    println!("\ncalibrated specific costs (Table I):");
    for (i, d) in calibration.details.iter().enumerate() {
        println!(
            "  {:<20} t_c = {:7.1} ns   e_c = {:7.1} nJ",
            d.class,
            calibration.model.time_s[i] * 1e9,
            calibration.model.energy_j[i] * 1e9,
        );
    }

    // 4. Count instructions per category on the fast ISS.
    let mut machine = Machine::boot(&program.words);
    let mut counter = ClassCounter::new(Paper);
    let run = machine
        .run_observed(1_000_000_000, &mut counter)
        .expect("simulation");
    println!(
        "\nfunctional result: rms*1000 = {}   ({} instructions executed)",
        run.words[0], run.instret
    );

    // 5. Estimate — and verify against a measured run.
    let estimate = calibration.model.estimate(counter.counts());
    let mut machine = Machine::boot(&program.words);
    let measured = testbed
        .run(&mut machine, 7, 1_000_000_000)
        .expect("measurement");
    println!("\n              {:>12} {:>12}", "estimated", "measured");
    println!(
        "time          {:>9.3} ms {:>9.3} ms   ({:+.2}% error)",
        estimate.time_s * 1e3,
        measured.measurement.time_s * 1e3,
        (estimate.time_s - measured.measurement.time_s) / measured.measurement.time_s * 100.0
    );
    println!(
        "energy        {:>9.3} mJ {:>9.3} mJ   ({:+.2}% error)",
        estimate.energy_j * 1e3,
        measured.measurement.energy_j * 1e3,
        (estimate.energy_j - measured.measurement.energy_j) / measured.measurement.energy_j * 100.0
    );
}
