//! Capped, jittered, deterministic exponential backoff — shared by the
//! supervisor's process-respawn loop, the shard orchestrator's
//! re-dispatch loop, and the remote worker's reconnect loop.
//!
//! Campaign results must never depend on wall clocks or global RNG
//! state, so the jitter PRNG is SplitMix64 keyed on (campaign seed,
//! slot, retry ordinal): the same failure history always backs off by
//! the same delays, and a pool of crash-looping slots never retries in
//! lockstep.

use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

/// Poll cadence for interruptible sleeps and the serve/shard event
/// loops: long waits are chopped into ticks so a raised stop flag (or a
/// closed connection) is noticed within one tick.
pub(crate) const TICK: Duration = Duration::from_millis(20);

/// SplitMix64: the jitter PRNG. Deterministic, stateless, and good
/// enough to decorrelate retry timing across slots.
pub(crate) fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// The delay before retry `n` (1-based) of `slot`: 50·2ⁿ⁻¹ ms capped
/// at 2 s, plus up to 50 ms of seeded jitter. Pure — callers that need
/// a deadline rather than a sleep (the serve loop must keep ticking)
/// use this directly.
pub(crate) fn backoff_delay(seed: u64, slot: usize, n: u32) -> Duration {
    let base = 50u64
        .saturating_mul(1 << n.saturating_sub(1).min(10))
        .min(2_000);
    let jitter = splitmix64(seed ^ ((slot as u64) << 32) ^ u64::from(n)) % 50;
    Duration::from_millis(base + jitter)
}

/// Sleeps for [`backoff_delay`], polling `stop` every [`TICK`] so a
/// shutting-down campaign never waits out a full backoff.
pub(crate) fn backoff_sleep(seed: u64, slot: usize, n: u32, stop: &AtomicBool) {
    let mut left = backoff_delay(seed, slot, n);
    while !left.is_zero() && !stop.load(Ordering::Relaxed) {
        let nap = left.min(TICK);
        std::thread::sleep(nap);
        left -= nap;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Instant;

    #[test]
    fn jitter_is_deterministic_and_slot_decorrelated() {
        // Same (seed, slot, ordinal) → same jitter; different slot →
        // (almost surely) different jitter; never consults a clock.
        assert_eq!(splitmix64(42), splitmix64(42));
        assert_ne!(splitmix64(1), splitmix64(1 ^ (1u64 << 32)));
        assert_eq!(backoff_delay(7, 3, 4), backoff_delay(7, 3, 4));
        assert_ne!(backoff_delay(7, 3, 4), backoff_delay(7, 4, 4));
    }

    #[test]
    fn delay_doubles_then_caps() {
        // The deterministic base under the ≤50 ms jitter: 50, 100,
        // 200, ... capped at 2000 ms. Strip the jitter by comparing
        // against the known bounds.
        let ms = |n| backoff_delay(99, 0, n).as_millis() as u64;
        for (n, base) in [(1, 50), (2, 100), (3, 200), (4, 400), (5, 800), (6, 1600)] {
            assert!((base..base + 50).contains(&ms(n)), "retry {n}: {}ms", ms(n));
        }
        // From retry 7 on, the cap holds no matter how large n gets —
        // including ordinals whose uncapped shift would overflow.
        for n in [7, 10, 11, 30, u32::MAX] {
            assert!((2000..2050).contains(&ms(n)), "retry {n}: {}ms", ms(n));
        }
    }

    #[test]
    fn every_delay_stays_inside_cap_and_jitter_bounds() {
        // Sweep seeds × slots × ordinals: every delay sits in
        // [base, base + 50) with base ≤ 2000 ms, so no retry loop —
        // submit reconnects included — can ever wait unbounded or
        // strip its jitter.
        for seed in [0u64, 1, 42, u64::MAX] {
            for slot in [0usize, 1, 7, 4096] {
                for n in 1..=16u32 {
                    let base = 50u64
                        .saturating_mul(1 << n.saturating_sub(1).min(10))
                        .min(2_000);
                    let got = backoff_delay(seed, slot, n).as_millis() as u64;
                    assert!(
                        (base..base + 50).contains(&got),
                        "seed {seed} slot {slot} retry {n}: {got}ms outside [{base}, {})",
                        base + 50
                    );
                }
            }
        }
    }

    #[test]
    fn zero_ordinal_never_panics_or_overflows() {
        // Retry 0 is out of contract (ordinals are 1-based) but must
        // degrade to a finite delay, not a shift overflow.
        assert!(backoff_delay(1, 0, 0) <= Duration::from_millis(2050));
    }

    #[test]
    fn sleep_is_interruptible() {
        // A raised stop flag turns any backoff into (at most) one tick.
        let stop = AtomicBool::new(true);
        let begun = Instant::now();
        backoff_sleep(7, 3, 30, &stop); // ordinal 30 would be 2s+ uncapped
        assert!(begun.elapsed() < Duration::from_millis(500));
    }
}
