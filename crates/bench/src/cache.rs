//! Content-addressed **result cache** for the serve coordinator.
//!
//! Campaigns are deterministic — the report is a pure function of the
//! campaign key (kernel/mode/plan config/seed), so a repeat submit can
//! be answered with the cached bytes instead of a re-simulation. The
//! cache is LRU by *byte budget* (`--cache-cap-bytes`), not entry
//! count: one million-injection report must not pin a thousand small
//! ones out, and the footprint stays bounded no matter the mix.
//!
//! Eviction decisions are returned to the caller (key + byte size) so
//! the coordinator can journal and count them; the cache itself stays
//! a pure data structure with no I/O.
//!
//! Convicted results never reach this cache: the audit tier
//! (DESIGN.md §16) holds sampled ranges back until a verdict, discards
//! anything a blacklisted worker returns, and invalidates a convict's
//! earlier ranges before the campaign can complete — so the report
//! bytes cached at completion are always quorum- or locally-verified.

use std::collections::HashMap;

/// LRU-by-bytes map from campaign key to rendered report.
pub(crate) struct ResultCache {
    cap_bytes: usize,
    used_bytes: usize,
    /// Key → (report, recency stamp). Stamps are a monotonically
    /// increasing counter, not a clock — determinism over wall time.
    entries: HashMap<String, (String, u64)>,
    tick: u64,
}

impl ResultCache {
    pub(crate) fn new(cap_bytes: usize) -> ResultCache {
        ResultCache {
            cap_bytes,
            used_bytes: 0,
            entries: HashMap::new(),
            tick: 0,
        }
    }

    /// Bytes currently held (reports only; key overhead is ignored,
    /// which keeps accounting byte-exact against the journaled
    /// eviction sizes).
    #[cfg(test)]
    pub(crate) fn used_bytes(&self) -> usize {
        self.used_bytes
    }

    #[cfg(test)]
    pub(crate) fn len(&self) -> usize {
        self.entries.len()
    }

    /// Looks up a cached report, refreshing its recency on a hit.
    pub(crate) fn get(&mut self, key: &str) -> Option<String> {
        self.tick += 1;
        let tick = self.tick;
        self.entries.get_mut(key).map(|(report, stamp)| {
            *stamp = tick;
            report.clone()
        })
    }

    /// Inserts a report, evicting least-recently-used entries until the
    /// byte budget holds. Returns the evicted `(key, bytes)` pairs so
    /// the caller can journal and count them. An entry larger than the
    /// whole budget is admitted and immediately evicted (still
    /// returned), so a pathological report cannot wedge the cache.
    pub(crate) fn put(&mut self, key: &str, report: &str) -> Vec<(String, usize)> {
        self.tick += 1;
        if let Some((old, stamp)) = self.entries.get_mut(key) {
            self.used_bytes -= old.len();
            self.used_bytes += report.len();
            *old = report.to_string();
            *stamp = self.tick;
        } else {
            self.used_bytes += report.len();
            self.entries
                .insert(key.to_string(), (report.to_string(), self.tick));
        }
        let mut evicted = Vec::new();
        while self.used_bytes > self.cap_bytes && !self.entries.is_empty() {
            let oldest = self
                .entries
                .iter()
                .min_by_key(|(_, (_, stamp))| *stamp)
                .map(|(k, _)| k.clone())
                .expect("non-empty cache has an oldest entry");
            let (report, _) = self.entries.remove(&oldest).expect("key came from the map");
            self.used_bytes -= report.len();
            evicted.push((oldest, report.len()));
        }
        evicted
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn evicts_least_recently_used_by_byte_budget() {
        let mut cache = ResultCache::new(10);
        assert!(cache.put("a", "aaaa").is_empty());
        assert!(cache.put("b", "bbbb").is_empty());
        // Touch `a` so `b` is the LRU victim when `c` overflows.
        assert_eq!(cache.get("a").as_deref(), Some("aaaa"));
        let evicted = cache.put("c", "cccc");
        assert_eq!(evicted, vec![("b".to_string(), 4)]);
        assert_eq!(cache.get("b"), None);
        assert_eq!(cache.get("a").as_deref(), Some("aaaa"));
        assert_eq!(cache.get("c").as_deref(), Some("cccc"));
        assert_eq!(cache.used_bytes(), 8);
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn oversized_entry_is_admitted_then_immediately_evicted() {
        let mut cache = ResultCache::new(4);
        let evicted = cache.put("huge", "0123456789");
        assert_eq!(evicted, vec![("huge".to_string(), 10)]);
        assert_eq!(cache.get("huge"), None);
        assert_eq!(cache.used_bytes(), 0);
    }

    #[test]
    fn overwriting_a_key_replaces_bytes_without_double_counting() {
        let mut cache = ResultCache::new(10);
        cache.put("k", "xxxxxxxx");
        cache.put("k", "yy");
        assert_eq!(cache.used_bytes(), 2);
        assert_eq!(cache.get("k").as_deref(), Some("yy"));
        // Freed budget admits new entries without evicting `k`.
        assert!(cache.put("other", "zzzzzz").is_empty());
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn zero_budget_caches_nothing_but_never_panics() {
        let mut cache = ResultCache::new(0);
        let evicted = cache.put("k", "data");
        assert_eq!(evicted.len(), 1);
        assert_eq!(cache.len(), 0);
        assert_eq!(cache.get("k"), None);
    }
}
