//! Hand-rolled flat JSON (the workspace deliberately has no serde).
//!
//! One grammar serves both durable artefacts and live wire traffic: the
//! campaign journal ([`crate::supervisor`]) and the worker-process
//! protocol ([`crate::worker`]) exchange single-line objects whose
//! values are unsigned numbers, strings, bools, or null — nothing
//! nested, nothing signed, nothing floating.

/// A value in a flat object: unsigned number, string, bool, or null.
/// That is the whole grammar the journal and the worker protocol need.
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum Jv {
    U(u64),
    S(String),
    B(bool),
    Null,
}

/// Escapes a string for a JSON literal (quotes, backslashes, control
/// characters — panic payloads can contain anything).
pub(crate) fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Parses one flat JSON object line (`{"k":v,...}`) into key/value
/// pairs. Returns `None` on any malformation — the caller decides
/// whether that means "torn trailing line", "corrupt journal", or
/// "protocol violation".
pub(crate) fn parse_flat(line: &str) -> Option<Vec<(String, Jv)>> {
    let mut c = line.trim().chars().peekable();
    let mut out = Vec::new();
    if c.next()? != '{' {
        return None;
    }
    loop {
        match c.peek()? {
            '}' => {
                c.next();
                break;
            }
            ',' => {
                c.next();
            }
            _ => {}
        }
        if *c.peek()? != '"' {
            return None;
        }
        let key = parse_string(&mut c)?;
        if c.next()? != ':' {
            return None;
        }
        let val = match c.peek()? {
            '"' => Jv::S(parse_string(&mut c)?),
            't' => parse_lit(&mut c, "true", Jv::B(true))?,
            'f' => parse_lit(&mut c, "false", Jv::B(false))?,
            'n' => parse_lit(&mut c, "null", Jv::Null)?,
            d if d.is_ascii_digit() => {
                let mut n: u64 = 0;
                while c.peek().is_some_and(char::is_ascii_digit) {
                    n = n
                        .checked_mul(10)?
                        .checked_add(c.next()? as u64 - '0' as u64)?;
                }
                Jv::U(n)
            }
            _ => return None,
        };
        out.push((key, val));
    }
    // Trailing garbage after the closing brace is a malformed line.
    if c.next().is_some() {
        return None;
    }
    Some(out)
}

fn parse_string(c: &mut std::iter::Peekable<std::str::Chars>) -> Option<String> {
    if c.next()? != '"' {
        return None;
    }
    let mut s = String::new();
    loop {
        match c.next()? {
            '"' => return Some(s),
            '\\' => match c.next()? {
                '"' => s.push('"'),
                '\\' => s.push('\\'),
                'n' => s.push('\n'),
                'r' => s.push('\r'),
                't' => s.push('\t'),
                'u' => {
                    let mut v = 0u32;
                    for _ in 0..4 {
                        v = v * 16 + c.next()?.to_digit(16)?;
                    }
                    s.push(char::from_u32(v)?);
                }
                _ => return None,
            },
            ch => s.push(ch),
        }
    }
}

fn parse_lit(c: &mut std::iter::Peekable<std::str::Chars>, lit: &str, val: Jv) -> Option<Jv> {
    for expect in lit.chars() {
        if c.next()? != expect {
            return None;
        }
    }
    Some(val)
}

/// Key/value accessor over one parsed line.
pub(crate) struct Obj(pub(crate) Vec<(String, Jv)>);

impl Obj {
    pub(crate) fn get(&self, key: &str) -> Option<&Jv> {
        self.0.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }
    pub(crate) fn u64(&self, key: &str) -> Option<u64> {
        match self.get(key)? {
            Jv::U(n) => Some(*n),
            _ => None,
        }
    }
    pub(crate) fn str(&self, key: &str) -> Option<&str> {
        match self.get(key)? {
            Jv::S(s) => Some(s),
            _ => None,
        }
    }
    pub(crate) fn bool(&self, key: &str) -> Option<bool> {
        match self.get(key)? {
            Jv::B(b) => Some(*b),
            _ => None,
        }
    }
    /// `Some(None)` for an explicit `null`, `Some(Some(n))` for a
    /// number, `None` for a missing or mistyped key.
    pub(crate) fn opt_u64(&self, key: &str) -> Option<Option<u64>> {
        match self.get(key)? {
            Jv::Null => Some(None),
            Jv::U(n) => Some(Some(*n)),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escaped_strings_roundtrip() {
        let nasty = "quote\" slash\\ newline\n tab\t bell\u{7}";
        let line = format!("{{\"s\":\"{}\"}}", esc(nasty));
        let obj = Obj(parse_flat(&line).unwrap());
        assert_eq!(obj.str("s"), Some(nasty));
    }

    #[test]
    fn typed_accessors_reject_mistyped_keys() {
        let obj = Obj(parse_flat("{\"n\":7,\"s\":\"x\",\"b\":true,\"z\":null}").unwrap());
        assert_eq!(obj.u64("n"), Some(7));
        assert_eq!(obj.u64("s"), None);
        assert_eq!(obj.str("s"), Some("x"));
        assert_eq!(obj.str("n"), None);
        assert_eq!(obj.bool("b"), Some(true));
        assert_eq!(obj.opt_u64("z"), Some(None));
        assert_eq!(obj.opt_u64("n"), Some(Some(7)));
        assert_eq!(obj.opt_u64("missing"), None);
    }

    #[test]
    fn malformed_objects_parse_to_none() {
        for bad in [
            "",
            "{",
            "{}garbage",
            "{\"i\":}",
            "{\"i\":1",
            "{\"i\":18446744073709551616}", // u64 overflow
            "not json at all",
            "{\"i\":-1}", // signed numbers are outside the grammar
        ] {
            assert!(parse_flat(bad).is_none(), "accepted: {bad:?}");
        }
    }

    #[test]
    fn kernel_names_with_quotes_survive_a_header_shaped_line() {
        // Nothing stops a workload registry from naming a kernel with
        // quotes or backslashes; the journal header must bind it
        // loss-free or the resume identity check would misfire.
        let name = r#"hevc_"lowdelay"_qp\32"#;
        let line = format!(
            "{{\"kind\":\"nfp-journal\",\"kernel\":\"{}\",\"injections\":4}}",
            esc(name)
        );
        let obj = Obj(parse_flat(&line).unwrap());
        assert_eq!(obj.str("kernel"), Some(name));
        assert_eq!(obj.u64("injections"), Some(4));
        // And the escaping itself is stable under a second round-trip.
        let again = format!("{{\"kernel\":\"{}\"}}", esc(obj.str("kernel").unwrap()));
        assert_eq!(Obj(parse_flat(&again).unwrap()).str("kernel"), Some(name));
    }

    #[test]
    fn count_fields_saturate_nowhere_and_overflow_to_none() {
        // The largest representable count parses exactly...
        let max = format!("{{\"n\":{}}}", u64::MAX);
        assert_eq!(Obj(parse_flat(&max).unwrap()).u64("n"), Some(u64::MAX));
        // ...one more, and absurdly long digit strings, reject the
        // whole line rather than wrapping or saturating a count.
        assert!(parse_flat("{\"n\":18446744073709551616}").is_none());
        let huge = format!("{{\"n\":{}9}}", u64::MAX);
        assert!(parse_flat(&huge).is_none());
        assert!(parse_flat(&format!("{{\"n\":1{}}}", "0".repeat(40))).is_none());
    }

    #[test]
    fn trailing_garbage_rejects_the_line() {
        for bad in [
            "{\"a\":1}{\"b\":2}", // two objects on one line
            "{\"a\":1},",         // journal lines never end in commas
            "{\"a\":1}x",
            "{\"a\":1}}",
            "{\"a\":\"s\"}\"tail\"",
        ] {
            assert!(parse_flat(bad).is_none(), "accepted: {bad:?}");
        }
        // Surrounding whitespace is not garbage: readers hand over
        // `read_line` output with the newline still attached.
        assert!(parse_flat("  {\"a\":1}\n").is_some());
    }
}
