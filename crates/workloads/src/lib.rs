#![warn(missing_docs)]
//! `nfp-workloads`: the evaluation workloads of the paper —
//! a mini-HEVC video decoder (integer-dominated, heterogeneous) and
//! Frequency Selective Extrapolation (double-precision FFT-dominated) —
//! each available as a native Rust reference and as a generated mini-C
//! program that runs on the simulated LEON3, plus the synthetic test
//! content and the kernel registry used by the reproduction harness.

pub mod fse;
pub mod hevc;
pub mod kernels;
pub mod pixels;
pub mod synth;

pub use kernels::{
    all_kernels, fse_kernels, hevc_kernels, machine_for, program, Kernel, Preset, Workload,
    INPUT_BASE, KERNEL_BUDGET, OUTPUT_BASE, QPS,
};
pub use pixels::{fnv1a, psnr, Image};
