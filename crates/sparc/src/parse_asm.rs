//! Text assembler: parses the disassembler's GNU-`as`-style syntax
//! back into instruction words.
//!
//! Supports everything [`crate::disasm`] emits — so
//! `parse_line(disassemble(i, pc), pc) == encode(i)` for every
//! representable instruction (a property test enforces this) — plus
//! labels, `.word` data, and `!` comments for hand-written sources.

use crate::cond::{FCond, ICond};
use crate::encode::encode;
use crate::insn::{AluOp, FpOp, Instr, MemSize, Operand};
use crate::regs::{FReg, Reg};
use std::collections::HashMap;
use std::fmt;

/// Error from the text assembler, with the offending line.
#[derive(Debug, Clone, PartialEq)]
pub struct AsmParseError {
    /// Explanation.
    pub message: String,
    /// 1-based line number (0 for single-line parses).
    pub line: u32,
}

impl fmt::Display for AsmParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for AsmParseError {}

fn err<T>(message: impl Into<String>) -> Result<T, AsmParseError> {
    Err(AsmParseError {
        message: message.into(),
        line: 0,
    })
}

/// Parses `%g0`-style integer register names.
fn parse_reg(token: &str) -> Result<Reg, AsmParseError> {
    let t = token.trim();
    let rest = t.strip_prefix('%').ok_or_else(|| AsmParseError {
        message: format!("expected register, found `{t}`"),
        line: 0,
    })?;
    let (bank, idx) = rest.split_at(1);
    let n: u8 = idx.parse().map_err(|_| AsmParseError {
        message: format!("bad register `{t}`"),
        line: 0,
    })?;
    if n >= 8 {
        return err(format!("register index out of range in `{t}`"));
    }
    Ok(match bank {
        "g" => Reg::g(n),
        "o" => Reg::o(n),
        "l" => Reg::l(n),
        "i" => Reg::i(n),
        _ => return err(format!("unknown register bank in `{t}`")),
    })
}

/// Parses `%f12`-style FP register names.
fn parse_freg(token: &str) -> Result<FReg, AsmParseError> {
    let t = token.trim();
    let n: u8 = t
        .strip_prefix("%f")
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| AsmParseError {
            message: format!("expected FP register, found `{t}`"),
            line: 0,
        })?;
    if n >= 32 {
        return err(format!("FP register out of range in `{t}`"));
    }
    Ok(FReg::new(n))
}

/// Parses a signed immediate in decimal or `0x` hex.
fn parse_imm(token: &str) -> Result<i64, AsmParseError> {
    let t = token.trim();
    let (neg, t) = match t.strip_prefix('-') {
        Some(rest) => (true, rest),
        None => (false, t),
    };
    let v = if let Some(hex) = t.strip_prefix("0x") {
        i64::from_str_radix(hex, 16)
    } else {
        t.parse()
    }
    .map_err(|_| AsmParseError {
        message: format!("bad immediate `{token}`"),
        line: 0,
    })?;
    Ok(if neg { -v } else { v })
}

/// Register or simm13 operand.
fn parse_operand(token: &str) -> Result<Operand, AsmParseError> {
    let t = token.trim();
    if t.starts_with('%') {
        Ok(Operand::Reg(parse_reg(t)?))
    } else {
        let v = parse_imm(t)?;
        if !Operand::fits_simm13(v as i32) || i32::try_from(v).is_err() {
            return err(format!("immediate `{t}` does not fit simm13"));
        }
        Ok(Operand::Imm(v as i32))
    }
}

/// Parses `[%rs1]`, `[%rs1 + op2]`, or `[%rs1 - imm]`.
fn parse_addr(token: &str) -> Result<(Reg, Operand), AsmParseError> {
    let t = token.trim();
    let inner = t
        .strip_prefix('[')
        .and_then(|s| s.strip_suffix(']'))
        .ok_or_else(|| AsmParseError {
            message: format!("expected [address], found `{t}`"),
            line: 0,
        })?;
    if let Some((base, off)) = inner.split_once('+') {
        Ok((parse_reg(base)?, parse_operand(off)?))
    } else if let Some((base, off)) = inner.split_once('-') {
        let v = parse_imm(off.trim())?;
        Ok((parse_reg(base)?, Operand::Imm(-(v as i32))))
    } else {
        Ok((parse_reg(inner)?, Operand::Imm(0)))
    }
}

/// A branch/call target: an absolute address or a label.
enum Target {
    Absolute(u32),
    Label(String),
}

fn parse_target(token: &str) -> Target {
    let t = token.trim();
    if let Some(hex) = t.strip_prefix("0x") {
        if let Ok(v) = u32::from_str_radix(hex, 16) {
            return Target::Absolute(v);
        }
    }
    Target::Label(t.to_string())
}

/// A parsed line before target resolution.
enum Parsed {
    /// Resolved instruction word.
    Word(u32),
    /// Branch/call needing a target.
    NeedsTarget {
        make: fn(i32, bool, u8) -> Instr,
        cond_bits: u8,
        annul: bool,
        target: Target,
    },
}

fn make_branch(disp: i32, annul: bool, cond_bits: u8) -> Instr {
    Instr::Branch {
        cond: ICond::from_bits(cond_bits),
        annul,
        disp22: disp,
    }
}

fn make_fbranch(disp: i32, annul: bool, cond_bits: u8) -> Instr {
    Instr::FBranch {
        cond: FCond::from_bits(cond_bits),
        annul,
        disp22: disp,
    }
}

fn make_call(disp: i32, _annul: bool, _cond: u8) -> Instr {
    Instr::Call { disp30: disp }
}

const ICOND_NAMES: [&str; 16] = [
    "n", "e", "le", "l", "leu", "cs", "neg", "vs", "a", "ne", "g", "ge", "gu", "cc", "pos", "vc",
];
const FCOND_NAMES: [&str; 16] = [
    "n", "ne", "lg", "ul", "l", "ug", "g", "u", "a", "e", "ue", "ge", "uge", "le", "ule", "o",
];

fn split_args(rest: &str) -> Vec<String> {
    // split on commas that are not inside brackets
    let mut out = Vec::new();
    let mut depth = 0;
    let mut cur = String::new();
    for ch in rest.chars() {
        match ch {
            '[' => {
                depth += 1;
                cur.push(ch);
            }
            ']' => {
                depth -= 1;
                cur.push(ch);
            }
            ',' if depth == 0 => {
                out.push(cur.trim().to_string());
                cur.clear();
            }
            _ => cur.push(ch),
        }
    }
    if !cur.trim().is_empty() {
        out.push(cur.trim().to_string());
    }
    out
}

/// Parses `%rs1 + op2` / `%rs1 - imm` / `%rs1` (jmpl/trap operand form).
fn parse_reg_plus(token: &str) -> Result<(Reg, Operand), AsmParseError> {
    let t = token.trim();
    if let Some((a, b)) = t.split_once('+') {
        Ok((parse_reg(a)?, parse_operand(b)?))
    } else if let Some((a, b)) = t.split_once('-') {
        let v = parse_imm(b.trim())?;
        Ok((parse_reg(a)?, Operand::Imm(-(v as i32))))
    } else {
        Ok((parse_reg(t)?, Operand::Imm(0)))
    }
}

fn parse_one(line: &str) -> Result<Parsed, AsmParseError> {
    let line = line.trim();
    let (mnemonic, rest) = match line.split_once(char::is_whitespace) {
        Some((m, r)) => (m, r.trim()),
        None => (line, ""),
    };
    let args = split_args(rest);
    let ok = |i: Instr| Ok(Parsed::Word(encode(i)));

    // Fixed-form mnemonics first.
    match mnemonic {
        "nop" => return ok(Instr::NOP),
        ".word" => {
            let v = parse_imm(rest)?;
            return Ok(Parsed::Word(v as u32));
        }
        "unimp" => {
            let v = parse_imm(rest)?;
            return ok(Instr::Unimp {
                const22: v as u32 & 0x3f_ffff,
            });
        }
        "sethi" => {
            // sethi %hi(0x...), %rd
            let hi = args
                .first()
                .and_then(|a| a.strip_prefix("%hi("))
                .and_then(|a| a.strip_suffix(')'))
                .ok_or_else(|| AsmParseError {
                    message: format!("bad sethi operand in `{line}`"),
                    line: 0,
                })?;
            let value = parse_imm(hi)? as u32;
            let rd = parse_reg(args.get(1).map(String::as_str).unwrap_or(""))?;
            return ok(Instr::Sethi {
                rd,
                imm22: value >> 10,
            });
        }
        "call" => {
            return Ok(Parsed::NeedsTarget {
                make: make_call,
                cond_bits: 0,
                annul: false,
                target: parse_target(rest),
            });
        }
        "rd" => {
            // rd %y, %rd
            if args.first().map(String::as_str) != Some("%y") {
                return err(format!("only %y is readable: `{line}`"));
            }
            let rd = parse_reg(args.get(1).map(String::as_str).unwrap_or(""))?;
            return ok(Instr::RdY { rd });
        }
        "wr" => {
            // wr %rs1, op2, %y
            if args.get(2).map(String::as_str) != Some("%y") {
                return err(format!("only %y is writable: `{line}`"));
            }
            let rs1 = parse_reg(&args[0])?;
            let op2 = parse_operand(&args[1])?;
            return ok(Instr::WrY { rs1, op2 });
        }
        "save" | "restore" => {
            let (rd, rs1, op2) = if args.len() == 3 {
                (
                    parse_reg(&args[2])?,
                    parse_reg(&args[0])?,
                    parse_operand(&args[1])?,
                )
            } else {
                (
                    crate::regs::G0,
                    crate::regs::G0,
                    Operand::Reg(crate::regs::G0),
                )
            };
            return ok(if mnemonic == "save" {
                Instr::Save { rd, rs1, op2 }
            } else {
                Instr::Restore { rd, rs1, op2 }
            });
        }
        "jmpl" => {
            // jmpl %rs1 + op2, %rd
            let (rs1, op2) = parse_reg_plus(&args[0])?;
            let rd = parse_reg(&args[1])?;
            return ok(Instr::Jmpl { rd, rs1, op2 });
        }
        "retl" => {
            return ok(Instr::Jmpl {
                rd: crate::regs::G0,
                rs1: crate::regs::O7,
                op2: Operand::Imm(8),
            });
        }
        "flush" => {
            let (rs1, op2) = parse_reg_plus(rest)?;
            return ok(Instr::Flush { rs1, op2 });
        }
        _ => {}
    }

    // Traps: t<cond> %rs1 + op2
    if let Some(cond_name) = mnemonic.strip_prefix('t') {
        if let Some(bits) = ICOND_NAMES.iter().position(|&n| n == cond_name) {
            if let Ok((rs1, op2)) = parse_reg_plus(rest) {
                return ok(Instr::Ticc {
                    cond: ICond::from_bits(bits as u8),
                    rs1,
                    op2,
                });
            }
        }
    }

    // Branches: b<cond>[,a] / fb<cond>[,a]
    let (base_mnemonic, annul) = match mnemonic.strip_suffix(",a") {
        Some(b) => (b, true),
        None => (mnemonic, false),
    };
    if let Some(cond_name) = base_mnemonic.strip_prefix("fb") {
        if let Some(bits) = FCOND_NAMES.iter().position(|&n| n == cond_name) {
            return Ok(Parsed::NeedsTarget {
                make: make_fbranch,
                cond_bits: bits as u8,
                annul,
                target: parse_target(rest),
            });
        }
    }
    if let Some(cond_name) = base_mnemonic.strip_prefix('b') {
        if let Some(bits) = ICOND_NAMES.iter().position(|&n| n == cond_name) {
            return Ok(Parsed::NeedsTarget {
                make: make_branch,
                cond_bits: bits as u8,
                annul,
                target: parse_target(rest),
            });
        }
    }

    // Memory operations.
    let int_loads: &[(&str, MemSize, bool)] = &[
        ("ld", MemSize::Word, false),
        ("ldub", MemSize::Byte, false),
        ("ldsb", MemSize::Byte, true),
        ("lduh", MemSize::Half, false),
        ("ldsh", MemSize::Half, true),
        ("ldd", MemSize::Double, false),
    ];
    for &(m, size, signed) in int_loads {
        if mnemonic == m {
            let (rs1, op2) = parse_addr(&args[0])?;
            let dst = &args[1];
            if dst.starts_with("%f") {
                return ok(Instr::LoadF {
                    double: size == MemSize::Double,
                    rd: parse_freg(dst)?,
                    rs1,
                    op2,
                });
            }
            return ok(Instr::Load {
                size,
                signed,
                rd: parse_reg(dst)?,
                rs1,
                op2,
            });
        }
    }
    let int_stores: &[(&str, MemSize)] = &[
        ("st", MemSize::Word),
        ("stb", MemSize::Byte),
        ("sth", MemSize::Half),
        ("std", MemSize::Double),
    ];
    for &(m, size) in int_stores {
        if mnemonic == m {
            let src = &args[0];
            let (rs1, op2) = parse_addr(&args[1])?;
            if src.starts_with("%f") {
                return ok(Instr::StoreF {
                    double: size == MemSize::Double,
                    rd: parse_freg(src)?,
                    rs1,
                    op2,
                });
            }
            return ok(Instr::Store {
                size,
                rd: parse_reg(src)?,
                rs1,
                op2,
            });
        }
    }

    // FP compare.
    let fcmps: &[(&str, bool, bool)] = &[
        ("fcmps", false, false),
        ("fcmpd", true, false),
        ("fcmpes", false, true),
        ("fcmped", true, true),
    ];
    for &(m, double, exception) in fcmps {
        if mnemonic == m {
            return ok(Instr::FCmp {
                double,
                exception,
                rs1: parse_freg(&args[0])?,
                rs2: parse_freg(&args[1])?,
            });
        }
    }

    // FPU register operations (unary and binary).
    let fpops: &[(&str, FpOp)] = &[
        ("fmovs", FpOp::FMovS),
        ("fnegs", FpOp::FNegS),
        ("fabss", FpOp::FAbsS),
        ("fsqrts", FpOp::FSqrtS),
        ("fsqrtd", FpOp::FSqrtD),
        ("fadds", FpOp::FAddS),
        ("faddd", FpOp::FAddD),
        ("fsubs", FpOp::FSubS),
        ("fsubd", FpOp::FSubD),
        ("fmuls", FpOp::FMulS),
        ("fmuld", FpOp::FMulD),
        ("fdivs", FpOp::FDivS),
        ("fdivd", FpOp::FDivD),
        ("fsmuld", FpOp::FsMulD),
        ("fitos", FpOp::FiToS),
        ("fitod", FpOp::FiToD),
        ("fstoi", FpOp::FsToI),
        ("fdtoi", FpOp::FdToI),
        ("fstod", FpOp::FsToD),
        ("fdtos", FpOp::FdToS),
    ];
    for &(m, op) in fpops {
        if mnemonic == m {
            return if op.is_unary() {
                ok(Instr::FpOp {
                    op,
                    rd: parse_freg(&args[1])?,
                    rs1: FReg::new(0),
                    rs2: parse_freg(&args[0])?,
                })
            } else {
                ok(Instr::FpOp {
                    op,
                    rd: parse_freg(&args[2])?,
                    rs1: parse_freg(&args[0])?,
                    rs2: parse_freg(&args[1])?,
                })
            };
        }
    }

    // ALU operations by mnemonic.
    let alu_all = [
        AluOp::Add,
        AluOp::AddCc,
        AluOp::AddX,
        AluOp::AddXCc,
        AluOp::Sub,
        AluOp::SubCc,
        AluOp::SubX,
        AluOp::SubXCc,
        AluOp::And,
        AluOp::AndCc,
        AluOp::AndN,
        AluOp::AndNCc,
        AluOp::Or,
        AluOp::OrCc,
        AluOp::OrN,
        AluOp::OrNCc,
        AluOp::Xor,
        AluOp::XorCc,
        AluOp::XNor,
        AluOp::XNorCc,
        AluOp::Sll,
        AluOp::Srl,
        AluOp::Sra,
        AluOp::UMul,
        AluOp::UMulCc,
        AluOp::SMul,
        AluOp::SMulCc,
        AluOp::UDiv,
        AluOp::UDivCc,
        AluOp::SDiv,
        AluOp::SDivCc,
    ];
    for op in alu_all {
        if mnemonic == op.mnemonic() {
            if args.len() != 3 {
                return err(format!("`{mnemonic}` needs 3 operands: `{line}`"));
            }
            return ok(Instr::Alu {
                op,
                rs1: parse_reg(&args[0])?,
                op2: parse_operand(&args[1])?,
                rd: parse_reg(&args[2])?,
            });
        }
    }

    err(format!("unknown mnemonic `{mnemonic}`"))
}

/// Parses one instruction at `pc` (for round-tripping disassembly;
/// branch targets must be absolute addresses).
pub fn parse_line(line: &str, pc: u32) -> Result<u32, AsmParseError> {
    match parse_one(line)? {
        Parsed::Word(w) => Ok(w),
        Parsed::NeedsTarget {
            make,
            cond_bits,
            annul,
            target,
        } => match target {
            Target::Absolute(addr) => {
                let disp = (addr as i64 - pc as i64) / 4;
                Ok(encode(make(disp as i32, annul, cond_bits)))
            }
            Target::Label(l) => err(format!("unresolved label `{l}` in single-line parse")),
        },
    }
}

/// Parses a multi-line program with labels (`name:`), `!` comments, and
/// `.word` data, loaded at `base`.
pub fn parse_program(source: &str, base: u32) -> Result<Vec<u32>, AsmParseError> {
    // Pass 1: label addresses.
    let mut labels: HashMap<String, u32> = HashMap::new();
    let mut word_index = 0u32;
    for (lineno, raw) in source.lines().enumerate() {
        let mut text = raw;
        if let Some(i) = text.find('!') {
            text = &text[..i];
        }
        let mut text = text.trim();
        while let Some((label, rest)) = text.split_once(':') {
            let label = label.trim();
            if label.is_empty() || label.contains(char::is_whitespace) {
                break;
            }
            if labels
                .insert(label.to_string(), base + word_index * 4)
                .is_some()
            {
                return Err(AsmParseError {
                    message: format!("duplicate label `{label}`"),
                    line: lineno as u32 + 1,
                });
            }
            text = rest.trim();
        }
        if !text.is_empty() {
            word_index += 1;
        }
    }
    // Pass 2: encode.
    let mut words = Vec::with_capacity(word_index as usize);
    for (lineno, raw) in source.lines().enumerate() {
        let mut text = raw;
        if let Some(i) = text.find('!') {
            text = &text[..i];
        }
        let mut text = text.trim();
        while let Some((label, rest)) = text.split_once(':') {
            if label.trim().is_empty() || label.trim().contains(char::is_whitespace) {
                break;
            }
            text = rest.trim();
        }
        if text.is_empty() {
            continue;
        }
        let pc = base + words.len() as u32 * 4;
        let word = (|| -> Result<u32, AsmParseError> {
            match parse_one(text)? {
                Parsed::Word(w) => Ok(w),
                Parsed::NeedsTarget {
                    make,
                    cond_bits,
                    annul,
                    target,
                } => {
                    let addr = match target {
                        Target::Absolute(a) => a,
                        Target::Label(l) => *labels.get(&l).ok_or_else(|| AsmParseError {
                            message: format!("undefined label `{l}`"),
                            line: 0,
                        })?,
                    };
                    let disp = (addr as i64 - pc as i64) / 4;
                    Ok(encode(make(disp as i32, annul, cond_bits)))
                }
            }
        })()
        .map_err(|e| AsmParseError {
            message: e.message,
            line: lineno as u32 + 1,
        })?;
        words.push(word);
    }
    Ok(words)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decode::decode;
    use crate::disasm::disassemble;

    #[test]
    fn parses_core_forms() {
        let pc = 0x4000_0000;
        let cases = [
            "nop",
            "add %o0, 42, %o1",
            "subcc %l0, %l1, %g0",
            "sethi %hi(0x40000000), %l0",
            "ld [%o0 + 4], %l1",
            "st %l1, [%o0 - 8]",
            "ldub [%l1], %o3",
            "faddd %f0, %f2, %f4",
            "fsqrtd %f4, %f6",
            "fcmpd %f0, %f2",
            "jmpl %o7 + 8, %g0",
            "rd %y, %o1",
            "wr %g1, 0, %y",
            "ta %g0 + 5",
            "save %o6, -96, %o6",
            "unimp 0x2a",
        ];
        for text in cases {
            let word = parse_line(text, pc).unwrap_or_else(|e| panic!("{text}: {e}"));
            // The parse must round-trip through the disassembler.
            let redisasm = disassemble(&decode(word), pc);
            let reparsed =
                parse_line(&redisasm, pc).unwrap_or_else(|e| panic!("{text} -> {redisasm}: {e}"));
            assert_eq!(word, reparsed, "{text} -> {redisasm}");
        }
    }

    #[test]
    fn branch_targets_are_pc_relative() {
        let word = parse_line("bne 0x40000008", 0x4000_0000).unwrap();
        assert_eq!(
            decode(word),
            Instr::Branch {
                cond: ICond::Ne,
                annul: false,
                disp22: 2,
            }
        );
        let word = parse_line("ba,a 0x3ffffffc", 0x4000_0000).unwrap();
        assert_eq!(
            decode(word),
            Instr::Branch {
                cond: ICond::A,
                annul: true,
                disp22: -1,
            }
        );
        let word = parse_line("call 0x40000100", 0x4000_0000).unwrap();
        assert_eq!(decode(word), Instr::Call { disp30: 64 });
    }

    #[test]
    fn program_with_labels_and_comments() {
        let src = "
            ! count down from 3
            sethi %hi(0x0), %l0
            or %l0, 3, %l0
        loop:
            subcc %l0, 1, %l0
            bne loop          ! back-edge
            nop
            ta %g0 + 0
            nop
        data: .word 0xdeadbeef
        ";
        let words = parse_program(src, 0x4000_0000).unwrap();
        assert_eq!(words.len(), 8);
        assert_eq!(words[7], 0xdead_beef);
        // The bne at index 3 targets index 2.
        assert_eq!(
            decode(words[3]),
            Instr::Branch {
                cond: ICond::Ne,
                annul: false,
                disp22: -1,
            }
        );
    }

    #[test]
    fn undefined_label_and_bad_mnemonic_error() {
        assert!(parse_program("ba nowhere\nnop", 0).is_err());
        let e = parse_line("frobnicate %o0", 0).unwrap_err();
        assert!(e.message.contains("unknown mnemonic"));
    }

    #[test]
    fn fp_loads_distinguished_by_register_bank() {
        let w1 = parse_line("ldd [%o0], %l0", 0).unwrap();
        assert!(matches!(decode(w1), Instr::Load { .. }));
        let w2 = parse_line("ldd [%o0], %f0", 0).unwrap();
        assert!(matches!(decode(w2), Instr::LoadF { double: true, .. }));
        let w3 = parse_line("std %f2, [%o0]", 0).unwrap();
        assert!(matches!(decode(w3), Instr::StoreF { double: true, .. }));
    }
}
