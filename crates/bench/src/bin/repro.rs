//! `repro`: regenerates every table and figure of the paper.
//!
//! ```text
//! repro table1                 # Table I  — calibrated specific costs
//! repro fig4                   # Fig. 4   — measured vs estimated, showcase kernels
//! repro table3                 # Table III — estimation-error summary (M = 120)
//! repro table4                 # Table IV — the FPU trade-off
//! repro fig1                   # Fig. 1   — simulation speed vs accuracy
//! repro ablation-categories    # E6 — model granularity
//! repro ablation-calibration   # E7 — calibration sensitivity
//! repro campaign               # SEU fault-injection vulnerability report
//! repro all                    # everything above (campaign excluded: opt-in)
//! repro all --quick            # reduced workload sizes (fast smoke run)
//! ```

use nfp_bench::{
    report_ablation_calibration, report_ablation_categories, report_campaign, report_fig1,
    report_fig4, report_table1, report_table3, report_table4, run_campaign_parallel,
    CampaignConfig, Evaluation, KernelResult, Mode,
};
use nfp_workloads::{all_kernels, fse_kernels, hevc_kernels, Kernel, Preset};

fn preset_from_args(args: &[String]) -> Preset {
    if args.iter().any(|a| a == "--quick") {
        Preset::quick()
    } else {
        Preset::paper()
    }
}

fn showcase_kernels(preset: &Preset) -> Vec<Kernel> {
    // Fig. 4's four representative cases: one FSE kernel and one HEVC
    // kernel, each in float and fixed variants.
    let fse = fse_kernels(preset).into_iter().next().expect("fse kernels");
    let hevc = hevc_kernels(preset)
        .into_iter()
        .find(|k| k.name.contains("movobj_lowdelay_qp32"))
        .expect("representative hevc kernel");
    vec![fse, hevc]
}

fn run_results(eval: &Evaluation, kernels: &[Kernel]) -> Vec<KernelResult> {
    eprintln!(
        "  running {} kernels x 2 variants across {} threads...",
        kernels.len(),
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    );
    eval.run_all_parallel(kernels).expect("kernel sweep")
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let command = args.first().map(String::as_str).unwrap_or("all");
    let preset = preset_from_args(&args);

    eprintln!("calibrating the cost model (Table II differential kernels)...");
    let eval = Evaluation::new().expect("calibration");

    let mut ran_any = false;
    let want = |name: &str| command == name || command == "all";

    if want("table1") {
        ran_any = true;
        println!("{}", report_table1(&eval));
    }
    if want("fig4") {
        ran_any = true;
        let kernels = showcase_kernels(&preset);
        let results = run_results(&eval, &kernels);
        println!("{}", report_fig4(&results));
    }
    if want("table3") {
        ran_any = true;
        let kernels = all_kernels(&preset);
        eprintln!(
            "running {} kernels x 2 variants (this is the paper's full M = {} set)...",
            kernels.len(),
            kernels.len() * 2
        );
        let results = run_results(&eval, &kernels);
        println!("{}", report_table3(&results));
        println!("{}", report_table4(&results));
    }
    if want("table4") && command != "all" {
        ran_any = true;
        let kernels = all_kernels(&preset);
        let results = run_results(&eval, &kernels);
        println!("{}", report_table4(&results));
    }
    if want("fig1") {
        ran_any = true;
        let kernels = hevc_kernels(&preset);
        let kernel = &kernels[0];
        let (text, _) = report_fig1(&eval, kernel).expect("fig1");
        println!("{text}");
    }
    if want("ablation-categories") {
        ran_any = true;
        // A representative subset keeps the three-fold calibration and
        // six-fold kernel sweep affordable.
        let mut subset = Vec::new();
        subset.extend(hevc_kernels(&preset).into_iter().take(3));
        subset.extend(fse_kernels(&preset).into_iter().take(2));
        let text = report_ablation_categories(&eval, &subset).expect("ablation");
        println!("{text}");
    }
    if want("ablation-calibration") {
        ran_any = true;
        let text = report_ablation_calibration(&eval.testbed).expect("ablation");
        println!("{text}");
    }
    if want("cache") {
        ran_any = true;
        let mut subset = Vec::new();
        subset.extend(hevc_kernels(&preset).into_iter().take(3));
        subset.extend(fse_kernels(&preset).into_iter().take(1));
        let text = nfp_bench::report_cache_extension(&subset).expect("cache extension");
        println!("{text}");
    }
    // Opt-in only (not part of `all`): a campaign over the paper-size
    // kernels replays millions of instructions per injection.
    if command == "campaign" {
        ran_any = true;
        let cfg = CampaignConfig::default();
        for kernel in &showcase_kernels(&preset) {
            eprintln!(
                "  injecting {} faults into {}...",
                cfg.injections, kernel.name
            );
            let result = run_campaign_parallel(kernel, Mode::Float, &cfg).expect("campaign");
            println!("{}", report_campaign(&result));
        }
    }
    if !ran_any {
        eprintln!(
            "unknown command `{command}`; expected table1|fig4|table3|table4|fig1|ablation-categories|ablation-calibration|cache|campaign|all"
        );
        std::process::exit(2);
    }
}
