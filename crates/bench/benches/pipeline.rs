//! Benchmarks of the estimation pipeline itself: compilation of the
//! workload programs (Table I's toolchain substitute), differential
//! calibration of one class (Table II), and applying the Eq. 1 model.

use criterion::{criterion_group, criterion_main, Criterion};
use nfp_cc::{compile, CompileOptions, FloatMode};
use nfp_core::{calibrate_class, paper_table1};
use nfp_testbed::Testbed;

fn bench_compile(c: &mut Criterion) {
    let hevc_src = nfp_workloads::hevc::minic::decoder_source();
    let fse_src = nfp_workloads::fse::minic::fse_source();
    let mut group = c.benchmark_group("compile");
    group.sample_size(20);
    group.bench_function("hevc_decoder_hard", |b| {
        b.iter(|| compile(&hevc_src, &CompileOptions::new(FloatMode::Hard)).unwrap())
    });
    group.bench_function("fse_soft", |b| {
        b.iter(|| compile(&fse_src, &CompileOptions::new(FloatMode::Soft)).unwrap())
    });
    group.finish();
}

fn bench_calibration(c: &mut Criterion) {
    let testbed = Testbed::new();
    let mut group = c.benchmark_group("calibration");
    group.sample_size(10);
    // Table II differential pair for one cheap and one expensive class.
    group.bench_function("integer_arithmetic_class", |b| {
        b.iter(|| calibrate_class(&testbed, "Integer Arithmetic", 20_000, 1).unwrap())
    });
    group.bench_function("memory_load_class", |b| {
        b.iter(|| calibrate_class(&testbed, "Memory Load", 5_000, 2).unwrap())
    });
    group.finish();
}

fn bench_estimation(c: &mut Criterion) {
    // Eq. 1 is a 9-element dot product; this documents just how cheap
    // the estimation step is compared to any simulation.
    let model = paper_table1();
    let counts: Vec<u64> = (0..9).map(|i| 1_000_000 + i * 37).collect();
    c.bench_function("eq1_estimate", |b| {
        b.iter(|| model.estimate(criterion::black_box(&counts)))
    });
}

criterion_group!(benches, bench_compile, bench_calibration, bench_estimation);
criterion_main!(benches);
