//! Threaded-code dispatch and superblock traces — the zero-decode hot
//! path behind [`Dispatch::Threaded`](crate::Dispatch::Threaded) and
//! [`Dispatch::Traced`](crate::Dispatch::Traced).
//!
//! Block-batched accounting (DESIGN.md §8) removed the per-instruction
//! counter commit, but `exec_linear` still re-matches the instruction
//! enum on every retirement. This module predecodes each image
//! instruction into a `(fn pointer, DecodedOp)` pair — the classic
//! threaded-code idiom — so the hot loop is one indirect call per
//! instruction with zero decode or match: all operand shapes
//! (immediate vs register, load width, signedness, ALU opcode) are
//! burned into the function pointer via const generics at predecode
//! time.
//!
//! On top of the flat dispatch table, [`TraceCache`] forms
//! **superblocks**: instruction traces that chain basic blocks across
//! statically-predicted branches (backward-taken/forward-not-taken)
//! and their delay slots, so a whole inner-loop iteration retires
//! without returning to the machine dispatcher. Predictions are
//! enforced at run time by guard ops that evaluate the condition from
//! a precomputed truth-table mask and side-exit with the exact
//! architectural `pc`/`npc` the stepping path would have produced.
//!
//! Bit-identity with the stepping path is preserved the same way the
//! block cache preserves it: every structure here is a pure function
//! of the predecoded image, so
//! [`Machine::patch_code_word`](crate::Machine::patch_code_word) (and
//! with it every fault-injection code flip and undo) drops it, and the
//! next run rebuilds from the patched stream.

use std::collections::HashSet;

use crate::blocks::{leaders, BlockCache};
use crate::bus::Bus;
use crate::cpu::Cpu;
use crate::exec::{compare, exec_alu, fault_to_trap, ExecError, Trap};
use nfp_sparc::cond::FccValue;
use nfp_sparc::{
    AluOp, Category, CategoryCounts, FCond, FReg, FpOp, ICond, Instr, MemSize, Operand, Reg,
};

/// Upper bound on superblock length, in trace ops. Bounds both build
/// time and the budget slack a trace needs before the run loop may
/// enter it (`run_until` exactness: a trace is only entered when the
/// whole trace fits in the remaining instruction budget).
pub(crate) const MAX_TRACE_OPS: usize = 256;

/// Control-flow verdict of one threaded op.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Flow {
    /// Sequential: fall through to the next op in the table/trace.
    Next,
    /// Side exit: the op has written the architectural `pc`/`npc` to
    /// follow; the trace stops here (the op itself retired).
    Exit,
}

/// One threaded execution function. `DecodedOp` carries the operands;
/// everything the shape of the instruction determines (opcode, operand
/// form, width) is specialized into the function itself.
pub(crate) type ExecFn = fn(&mut Cpu, &mut Bus, &DecodedOp) -> Result<Flow, ExecError>;

/// Dispatch-kind tag mirroring the shape burned into the op's
/// function pointer. The run loops inline the hottest kinds directly
/// at the dispatch site (see [`exec_top`]); everything else — and any
/// corrupted table entry, whose record defaults to `Generic` — goes
/// through the indirect call, which stays the canonical semantic.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
#[repr(u8)]
pub(crate) enum OpKind {
    /// Execute through the fn pointer (FP, window ops, trap stubs).
    #[default]
    Generic,
    /// Retires with no architectural effect (`nop`, `flush`, and
    /// in-trace retired `ba`).
    Nop,
    /// `sethi` with a live destination; `imm` is precomputed.
    Sethi,
    /// Integer ALU, immediate form; `aux` is the `AluOp` discriminant.
    AluImm,
    /// Integer ALU, register form; `aux` is the `AluOp` discriminant.
    AluReg,
    /// Integer load, immediate form; `aux` = size code | signed << 2.
    LoadImm,
    /// Integer load, register form; `aux` as for `LoadImm`.
    LoadReg,
    /// Integer store, immediate form; `aux` = size code.
    StoreImm,
    /// Integer store, register form; `aux` = size code.
    StoreReg,
    /// Predicted-taken icc guard (non-annulling).
    GuardTaken,
    /// Predicted-taken icc guard (annulling).
    GuardTakenAnnul,
    /// Predicted-not-taken icc guard.
    GuardUntaken,
    /// Predicted-taken fcc guard (non-annulling).
    GuardFTaken,
    /// Predicted-taken fcc guard (annulling).
    GuardFTakenAnnul,
    /// Predicted-not-taken fcc guard.
    GuardFUntaken,
    /// In-trace `call`: links `%o7`, continuation is inlined.
    CallLink,
    /// `rd %y`.
    RdY,
    /// `wr %y`, immediate form.
    WrYImm,
    /// `wr %y`, register form.
    WrYReg,
    /// `save`, immediate form.
    SaveImm,
    /// `save`, register form.
    SaveReg,
    /// `restore`, immediate form.
    RestoreImm,
    /// `restore`, register form.
    RestoreReg,
    /// FP load, immediate form; `aux` = 1 for a double.
    LoadFImm,
    /// FP load, register form; `aux` = 1 for a double.
    LoadFReg,
    /// FP store, immediate form; `aux` = 1 for a double.
    StoreFImm,
    /// FP store, register form; `aux` = 1 for a double.
    StoreFReg,
    /// FP arithmetic; `aux` is the `FpOp` discriminant.
    Fp,
    /// `fcmps`.
    FCmpS,
    /// `fcmpd`.
    FCmpD,
    /// Always-trapping entry; `aux` selects the error (see
    /// [`stub_err`]).
    Stub,
}

/// Predecoded operand record. One fixed shape for every instruction
/// keeps the dispatch table flat (`Vec<TOp>`), with fields reused per
/// form: `imm` is the immediate operand, the precomputed `sethi`
/// value, the branch target of an untaken-guard, or the raw word of an
/// illegal instruction; `mask` is the guard truth-table.
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct DecodedOp {
    /// The instruction's own address (trap payloads, guard exits).
    pub pc: u32,
    /// Immediate / precomputed value / guard target / illegal word.
    pub imm: u32,
    /// Condition truth-table for guard ops (see [`icc_mask`]).
    pub mask: u16,
    /// Destination register number.
    pub rd: u8,
    /// First source register number.
    pub rs1: u8,
    /// Second source register number (register-form `op2`).
    pub rs2: u8,
    /// Inline-dispatch tag (see [`OpKind`]).
    pub kind: OpKind,
    /// Kind-specific selector (ALU opcode, load/store size code).
    pub aux: u8,
}

/// `DecodedOp` is sized to pack two entries per 32-byte half cache
/// line; `kind`/`aux` live in what used to be padding. Growing it is a
/// measurable dispatch regression, so the layout is pinned here.
const _: () = assert!(std::mem::size_of::<DecodedOp>() == 16);

impl DecodedOp {
    fn at(pc: u32) -> Self {
        DecodedOp {
            pc,
            ..Default::default()
        }
    }
}

/// A threaded op: the function pointer *is* the decoded instruction.
#[derive(Clone, Copy)]
pub(crate) struct TOp {
    pub exec: ExecFn,
    pub op: DecodedOp,
}

impl std::fmt::Debug for TOp {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TOp").field("op", &self.op).finish()
    }
}

/// Register numbers in `DecodedOp` come from `Reg::num()` so they are
/// always `< 32`; the mask keeps that invariant visible to the
/// constructor so no bounds branch survives in the hot path.
#[inline(always)]
fn reg(n: u8) -> Reg {
    Reg::new(n & 31)
}

#[inline(always)]
fn freg(n: u8) -> FReg {
    FReg::new(n & 31)
}

#[inline(always)]
fn op2_val<const IMM: bool>(cpu: &Cpu, op: &DecodedOp) -> u32 {
    if IMM {
        op.imm
    } else {
        cpu.get(reg(op.rs2))
    }
}

// ---------------------------------------------------------------------------
// Linear exec functions (mirrors of `exec_linear`'s arms, OBSERVE = false)
// ---------------------------------------------------------------------------

fn exec_nop(_cpu: &mut Cpu, _bus: &mut Bus, _op: &DecodedOp) -> Result<Flow, ExecError> {
    Ok(Flow::Next)
}

#[inline(always)]
fn exec_sethi(cpu: &mut Cpu, _bus: &mut Bus, op: &DecodedOp) -> Result<Flow, ExecError> {
    cpu.set(reg(op.rd), op.imm);
    Ok(Flow::Next)
}

/// `AluOp` variants in declaration order, so `AluOp::X as u8` indexes
/// back to the variant inside a const-generic context.
const ALU_OPS: [AluOp; 31] = [
    AluOp::Add,
    AluOp::AddCc,
    AluOp::AddX,
    AluOp::AddXCc,
    AluOp::Sub,
    AluOp::SubCc,
    AluOp::SubX,
    AluOp::SubXCc,
    AluOp::And,
    AluOp::AndCc,
    AluOp::AndN,
    AluOp::AndNCc,
    AluOp::Or,
    AluOp::OrCc,
    AluOp::OrN,
    AluOp::OrNCc,
    AluOp::Xor,
    AluOp::XorCc,
    AluOp::XNor,
    AluOp::XNorCc,
    AluOp::Sll,
    AluOp::Srl,
    AluOp::Sra,
    AluOp::UMul,
    AluOp::UMulCc,
    AluOp::SMul,
    AluOp::SMulCc,
    AluOp::UDiv,
    AluOp::UDivCc,
    AluOp::SDiv,
    AluOp::SDivCc,
];

#[inline(always)]
fn exec_alu_c<const OP: u8, const IMM: bool>(
    cpu: &mut Cpu,
    _bus: &mut Bus,
    op: &DecodedOp,
) -> Result<Flow, ExecError> {
    let a = cpu.get(reg(op.rs1));
    let b = op2_val::<IMM>(cpu, op);
    let r = exec_alu(cpu, ALU_OPS[OP as usize], a, b, op.pc)?;
    cpu.set(reg(op.rd), r);
    Ok(Flow::Next)
}

fn alu_fn(op: AluOp, imm: bool) -> ExecFn {
    macro_rules! arms {
        ($($v:ident),* $(,)?) => {
            match (op, imm) {
                $(
                    (AluOp::$v, false) => exec_alu_c::<{ AluOp::$v as u8 }, false>,
                    (AluOp::$v, true) => exec_alu_c::<{ AluOp::$v as u8 }, true>,
                )*
            }
        };
    }
    arms!(
        Add, AddCc, AddX, AddXCc, Sub, SubCc, SubX, SubXCc, And, AndCc, AndN, AndNCc, Or, OrCc,
        OrN, OrNCc, Xor, XorCc, XNor, XNorCc, Sll, Srl, Sra, UMul, UMulCc, SMul, SMulCc, UDiv,
        UDivCc, SDiv, SDivCc,
    )
}

fn exec_rdy(cpu: &mut Cpu, _bus: &mut Bus, op: &DecodedOp) -> Result<Flow, ExecError> {
    let y = cpu.y;
    cpu.set(reg(op.rd), y);
    Ok(Flow::Next)
}

fn exec_wry_c<const IMM: bool>(
    cpu: &mut Cpu,
    _bus: &mut Bus,
    op: &DecodedOp,
) -> Result<Flow, ExecError> {
    cpu.y = cpu.get(reg(op.rs1)) ^ op2_val::<IMM>(cpu, op);
    Ok(Flow::Next)
}

fn exec_save_c<const IMM: bool>(
    cpu: &mut Cpu,
    _bus: &mut Bus,
    op: &DecodedOp,
) -> Result<Flow, ExecError> {
    // Source operands are read in the OLD window, the result is
    // written in the NEW window.
    let a = cpu.get(reg(op.rs1));
    let b = op2_val::<IMM>(cpu, op);
    if !cpu.window_save() {
        return Err(Trap::WindowOverflow { pc: op.pc }.into());
    }
    cpu.set(reg(op.rd), a.wrapping_add(b));
    Ok(Flow::Next)
}

fn exec_restore_c<const IMM: bool>(
    cpu: &mut Cpu,
    _bus: &mut Bus,
    op: &DecodedOp,
) -> Result<Flow, ExecError> {
    let a = cpu.get(reg(op.rs1));
    let b = op2_val::<IMM>(cpu, op);
    if !cpu.window_restore() {
        return Err(Trap::WindowUnderflow { pc: op.pc }.into());
    }
    cpu.set(reg(op.rd), a.wrapping_add(b));
    Ok(Flow::Next)
}

/// `SIZE`: 0 = byte, 1 = half, 2 = word, 3 = doubleword (odd-`rd`
/// doublewords are routed to [`exec_odd_int_pair`] at predecode).
#[inline(always)]
fn exec_load_c<const SIZE: u8, const SIGNED: bool, const IMM: bool>(
    cpu: &mut Cpu,
    bus: &mut Bus,
    op: &DecodedOp,
) -> Result<Flow, ExecError> {
    let addr = cpu.get(reg(op.rs1)).wrapping_add(op2_val::<IMM>(cpu, op));
    let map = |e| ExecError::Trap(fault_to_trap(op.pc, e));
    match SIZE {
        0 => {
            let v = bus.load8(addr).map_err(map)? as u32;
            let v = if SIGNED {
                v as u8 as i8 as i32 as u32
            } else {
                v
            };
            cpu.set(reg(op.rd), v);
        }
        1 => {
            let v = bus.load16(addr).map_err(map)? as u32;
            let v = if SIGNED {
                v as u16 as i16 as i32 as u32
            } else {
                v
            };
            cpu.set(reg(op.rd), v);
        }
        2 => {
            let v = bus.load32(addr).map_err(map)?;
            cpu.set(reg(op.rd), v);
        }
        _ => {
            let v = bus.load64(addr).map_err(map)?;
            cpu.set(reg(op.rd), (v >> 32) as u32);
            cpu.set(reg(op.rd + 1), v as u32);
        }
    }
    Ok(Flow::Next)
}

#[inline(always)]
fn exec_store_c<const SIZE: u8, const IMM: bool>(
    cpu: &mut Cpu,
    bus: &mut Bus,
    op: &DecodedOp,
) -> Result<Flow, ExecError> {
    let addr = cpu.get(reg(op.rs1)).wrapping_add(op2_val::<IMM>(cpu, op));
    let map = |e| ExecError::Trap(fault_to_trap(op.pc, e));
    let v = cpu.get(reg(op.rd));
    match SIZE {
        0 => bus.store8(addr, v as u8).map_err(map)?,
        1 => bus.store16(addr, v as u16).map_err(map)?,
        2 => bus.store32(addr, v).map_err(map)?,
        _ => {
            let lo = cpu.get(reg(op.rd + 1));
            let dv = ((v as u64) << 32) | lo as u64;
            bus.store64(addr, dv).map_err(map)?;
        }
    }
    Ok(Flow::Next)
}

fn exec_loadf_c<const DOUBLE: bool, const IMM: bool>(
    cpu: &mut Cpu,
    bus: &mut Bus,
    op: &DecodedOp,
) -> Result<Flow, ExecError> {
    let addr = cpu.get(reg(op.rs1)).wrapping_add(op2_val::<IMM>(cpu, op));
    let map = |e| ExecError::Trap(fault_to_trap(op.pc, e));
    if DOUBLE {
        let v = bus.load64(addr).map_err(map)?;
        cpu.fset(freg(op.rd), (v >> 32) as u32);
        cpu.fset(freg(op.rd + 1), v as u32);
    } else {
        let v = bus.load32(addr).map_err(map)?;
        cpu.fset(freg(op.rd), v);
    }
    Ok(Flow::Next)
}

fn exec_storef_c<const DOUBLE: bool, const IMM: bool>(
    cpu: &mut Cpu,
    bus: &mut Bus,
    op: &DecodedOp,
) -> Result<Flow, ExecError> {
    let addr = cpu.get(reg(op.rs1)).wrapping_add(op2_val::<IMM>(cpu, op));
    let map = |e| ExecError::Trap(fault_to_trap(op.pc, e));
    if DOUBLE {
        let hi = cpu.fget(freg(op.rd)) as u64;
        let lo = cpu.fget(freg(op.rd + 1)) as u64;
        bus.store64(addr, (hi << 32) | lo).map_err(map)?;
    } else {
        let v = cpu.fget(freg(op.rd));
        bus.store32(addr, v).map_err(map)?;
    }
    Ok(Flow::Next)
}

// --- floating point (operand evenness is validated at predecode) ---

macro_rules! fp_fn {
    ($name:ident, |$cpu:ident, $op:ident| $body:expr) => {
        fn $name($cpu: &mut Cpu, _bus: &mut Bus, $op: &DecodedOp) -> Result<Flow, ExecError> {
            $body;
            Ok(Flow::Next)
        }
    };
}

fp_fn!(exec_fmovs, |cpu, op| {
    let v = cpu.fget(freg(op.rs2));
    cpu.fset(freg(op.rd), v)
});
fp_fn!(exec_fnegs, |cpu, op| {
    let v = cpu.fget(freg(op.rs2)) ^ 0x8000_0000;
    cpu.fset(freg(op.rd), v)
});
fp_fn!(exec_fabss, |cpu, op| {
    let v = cpu.fget(freg(op.rs2)) & 0x7fff_ffff;
    cpu.fset(freg(op.rd), v)
});
fp_fn!(exec_fsqrts, |cpu, op| {
    let v = cpu.fget_s(freg(op.rs2));
    cpu.fset_s(freg(op.rd), v.sqrt())
});
fp_fn!(exec_fsqrtd, |cpu, op| {
    let v = cpu.fget_d(freg(op.rs2));
    cpu.fset_d(freg(op.rd), v.sqrt())
});
fp_fn!(exec_fadds, |cpu, op| {
    let v = cpu.fget_s(freg(op.rs1)) + cpu.fget_s(freg(op.rs2));
    cpu.fset_s(freg(op.rd), v)
});
fp_fn!(exec_fsubs, |cpu, op| {
    let v = cpu.fget_s(freg(op.rs1)) - cpu.fget_s(freg(op.rs2));
    cpu.fset_s(freg(op.rd), v)
});
fp_fn!(exec_fmuls, |cpu, op| {
    let v = cpu.fget_s(freg(op.rs1)) * cpu.fget_s(freg(op.rs2));
    cpu.fset_s(freg(op.rd), v)
});
fp_fn!(exec_fdivs, |cpu, op| {
    let v = cpu.fget_s(freg(op.rs1)) / cpu.fget_s(freg(op.rs2));
    cpu.fset_s(freg(op.rd), v)
});
fp_fn!(exec_faddd, |cpu, op| {
    let v = cpu.fget_d(freg(op.rs1)) + cpu.fget_d(freg(op.rs2));
    cpu.fset_d(freg(op.rd), v)
});
fp_fn!(exec_fsubd, |cpu, op| {
    let v = cpu.fget_d(freg(op.rs1)) - cpu.fget_d(freg(op.rs2));
    cpu.fset_d(freg(op.rd), v)
});
fp_fn!(exec_fmuld, |cpu, op| {
    let v = cpu.fget_d(freg(op.rs1)) * cpu.fget_d(freg(op.rs2));
    cpu.fset_d(freg(op.rd), v)
});
fp_fn!(exec_fdivd, |cpu, op| {
    let v = cpu.fget_d(freg(op.rs1)) / cpu.fget_d(freg(op.rs2));
    cpu.fset_d(freg(op.rd), v)
});
fp_fn!(exec_fsmuld, |cpu, op| {
    let v = cpu.fget_s(freg(op.rs1)) as f64 * cpu.fget_s(freg(op.rs2)) as f64;
    cpu.fset_d(freg(op.rd), v)
});
fp_fn!(exec_fitos, |cpu, op| {
    let v = cpu.fget(freg(op.rs2)) as i32 as f32;
    cpu.fset_s(freg(op.rd), v)
});
fp_fn!(exec_fitod, |cpu, op| {
    let v = cpu.fget(freg(op.rs2)) as i32 as f64;
    cpu.fset_d(freg(op.rd), v)
});
fp_fn!(exec_fstoi, |cpu, op| {
    let v = cpu.fget_s(freg(op.rs2));
    cpu.fset(freg(op.rd), (v as i32) as u32)
});
fp_fn!(exec_fdtoi, |cpu, op| {
    let v = cpu.fget_d(freg(op.rs2));
    cpu.fset(freg(op.rd), (v as i32) as u32)
});
fp_fn!(exec_fstod, |cpu, op| {
    let v = cpu.fget_s(freg(op.rs2)) as f64;
    cpu.fset_d(freg(op.rd), v)
});
fp_fn!(exec_fdtos, |cpu, op| {
    let v = cpu.fget_d(freg(op.rs2)) as f32;
    cpu.fset_s(freg(op.rd), v)
});
fp_fn!(exec_fcmps, |cpu, op| {
    cpu.fcc = compare(
        cpu.fget_s(freg(op.rs1)) as f64,
        cpu.fget_s(freg(op.rs2)) as f64,
    )
});
fp_fn!(exec_fcmpd, |cpu, op| {
    cpu.fcc = compare(cpu.fget_d(freg(op.rs1)), cpu.fget_d(freg(op.rs2)))
});

// --- trap stubs: instructions whose predecoded form always traps ---

#[cold]
fn exec_fp_disabled(_cpu: &mut Cpu, _bus: &mut Bus, op: &DecodedOp) -> Result<Flow, ExecError> {
    Err(Trap::FpDisabled { pc: op.pc }.into())
}

#[cold]
fn exec_odd_fp_pair(_cpu: &mut Cpu, _bus: &mut Bus, op: &DecodedOp) -> Result<Flow, ExecError> {
    Err(Trap::OddFpPair { pc: op.pc }.into())
}

#[cold]
fn exec_odd_int_pair(_cpu: &mut Cpu, _bus: &mut Bus, op: &DecodedOp) -> Result<Flow, ExecError> {
    Err(Trap::OddIntPair { pc: op.pc }.into())
}

#[cold]
fn exec_illegal(_cpu: &mut Cpu, _bus: &mut Bus, op: &DecodedOp) -> Result<Flow, ExecError> {
    Err(Trap::Illegal {
        pc: op.pc,
        word: op.imm,
    }
    .into())
}

/// Block-ending instructions (CTIs, `t<cond>`) must never be executed
/// through the linear dispatch table; the table entry for them reports
/// the routing violation as a typed error (never a panic), which the
/// machine layer surfaces as `SimError::DispatchViolation`.
#[cold]
fn exec_not_linear(_cpu: &mut Cpu, _bus: &mut Bus, op: &DecodedOp) -> Result<Flow, ExecError> {
    Err(ExecError::NotLinear { pc: op.pc })
}

// ---------------------------------------------------------------------------
// Guard ops (trace side exits)
// ---------------------------------------------------------------------------

/// Index of the current integer condition codes into a guard
/// truth-table mask: `n<<3 | z<<2 | v<<1 | c`.
#[inline(always)]
fn icc_index(cpu: &Cpu) -> u16 {
    ((cpu.icc.n as u16) << 3)
        | ((cpu.icc.z as u16) << 2)
        | ((cpu.icc.v as u16) << 1)
        | (cpu.icc.c as u16)
}

/// Truth table of `cond` over all 16 icc states, bit `i` set iff the
/// branch is taken in state `i` (see [`icc_index`]). Evaluating a
/// guard is then one shift-and-mask instead of the cond match.
pub(crate) fn icc_mask(cond: ICond) -> u16 {
    let mut m = 0u16;
    for i in 0..16u16 {
        if cond.eval(i & 8 != 0, i & 4 != 0, i & 2 != 0, i & 1 != 0) {
            m |= 1 << i;
        }
    }
    m
}

#[inline(always)]
fn fcc_index(cpu: &Cpu) -> u16 {
    match cpu.fcc {
        FccValue::Equal => 0,
        FccValue::Less => 1,
        FccValue::Greater => 2,
        FccValue::Unordered => 3,
    }
}

/// Truth table of `cond` over the 4 fcc relations (see [`fcc_index`]).
pub(crate) fn fcc_mask(cond: FCond) -> u16 {
    let mut m = 0u16;
    for (i, fcc) in [
        FccValue::Equal,
        FccValue::Less,
        FccValue::Greater,
        FccValue::Unordered,
    ]
    .into_iter()
    .enumerate()
    {
        if cond.eval(fcc) {
            m |= 1 << i;
        }
    }
    m
}

/// Guard for a branch the trace predicts **taken**: falls through into
/// the (already inlined) delay slot and target block while the
/// prediction holds, and side-exits with the exact not-taken
/// architectural state otherwise. `op.pc` is the branch's address; the
/// trace is only ever entered from a sequential state, so
/// `npc = pc + 4` at the guard.
#[inline(always)]
fn guard_taken<const ANNUL: bool>(
    cpu: &mut Cpu,
    _bus: &mut Bus,
    op: &DecodedOp,
) -> Result<Flow, ExecError> {
    if (op.mask >> icc_index(cpu)) & 1 != 0 {
        return Ok(Flow::Next);
    }
    not_taken_exit::<ANNUL>(cpu, op)
}

/// Guard for a branch the trace predicts **not taken**: falls through
/// past the (annulled or inlined) delay slot while untaken, and
/// side-exits into the delay-slot-then-target state when taken.
/// `op.imm` holds the branch target.
#[inline(always)]
fn guard_untaken(cpu: &mut Cpu, _bus: &mut Bus, op: &DecodedOp) -> Result<Flow, ExecError> {
    if (op.mask >> icc_index(cpu)) & 1 == 0 {
        return Ok(Flow::Next);
    }
    taken_exit(cpu, op)
}

#[inline(always)]
fn guard_ftaken<const ANNUL: bool>(
    cpu: &mut Cpu,
    _bus: &mut Bus,
    op: &DecodedOp,
) -> Result<Flow, ExecError> {
    if (op.mask >> fcc_index(cpu)) & 1 != 0 {
        return Ok(Flow::Next);
    }
    not_taken_exit::<ANNUL>(cpu, op)
}

#[inline(always)]
fn guard_funtaken(cpu: &mut Cpu, _bus: &mut Bus, op: &DecodedOp) -> Result<Flow, ExecError> {
    if (op.mask >> fcc_index(cpu)) & 1 == 0 {
        return Ok(Flow::Next);
    }
    taken_exit(cpu, op)
}

/// Not-taken side exit from a sequential state `(pc, pc+4)`: an
/// annulling branch skips its delay slot (`pc+8, pc+12`), a
/// non-annulling one executes it (`pc+4, pc+8`). Matches
/// `apply_branch` in `exec.rs`.
#[cold]
fn not_taken_exit<const ANNUL: bool>(cpu: &mut Cpu, op: &DecodedOp) -> Result<Flow, ExecError> {
    if ANNUL {
        cpu.pc = op.pc.wrapping_add(8);
        cpu.npc = op.pc.wrapping_add(12);
    } else {
        cpu.pc = op.pc.wrapping_add(4);
        cpu.npc = op.pc.wrapping_add(8);
    }
    Ok(Flow::Exit)
}

/// Taken side exit: a taken conditional branch always executes its
/// delay slot (`pc+4`), then the target (`op.imm`).
#[cold]
fn taken_exit(cpu: &mut Cpu, op: &DecodedOp) -> Result<Flow, ExecError> {
    cpu.pc = op.pc.wrapping_add(4);
    cpu.npc = op.imm;
    Ok(Flow::Exit)
}

/// `ba`/`ba,a`/`fba`/`fba,a` inside a trace: the transfer is
/// unconditional and the successor blocks are inlined, so retiring the
/// branch is a no-op.
fn exec_retire(_cpu: &mut Cpu, _bus: &mut Bus, _op: &DecodedOp) -> Result<Flow, ExecError> {
    Ok(Flow::Next)
}

/// `call` inside a trace: writes the return address (its own pc) to
/// `%o7`; the target block is inlined after the delay slot.
#[inline(always)]
fn exec_call_link(cpu: &mut Cpu, _bus: &mut Bus, op: &DecodedOp) -> Result<Flow, ExecError> {
    cpu.set(nfp_sparc::regs::O7, op.pc);
    Ok(Flow::Next)
}

// ---------------------------------------------------------------------------
// Inline dispatch
// ---------------------------------------------------------------------------

/// `FpOp` variants in declaration order (same convention as
/// [`ALU_OPS`]), so `FpOp::X as u8` stored in `aux` indexes back.
const FP_OPS: [FpOp; 20] = [
    FpOp::FMovS,
    FpOp::FNegS,
    FpOp::FAbsS,
    FpOp::FSqrtS,
    FpOp::FSqrtD,
    FpOp::FAddS,
    FpOp::FAddD,
    FpOp::FSubS,
    FpOp::FSubD,
    FpOp::FMulS,
    FpOp::FMulD,
    FpOp::FDivS,
    FpOp::FDivD,
    FpOp::FsMulD,
    FpOp::FiToS,
    FpOp::FiToD,
    FpOp::FsToI,
    FpOp::FdToI,
    FpOp::FsToD,
    FpOp::FdToS,
];

/// Inline mirror of [`fpop_fn`]'s dispatch, keyed by the `aux` tag.
#[inline(always)]
fn exec_fp_aux(cpu: &mut Cpu, bus: &mut Bus, op: &DecodedOp) -> Result<Flow, ExecError> {
    use FpOp::*;
    match FP_OPS[op.aux as usize] {
        FMovS => exec_fmovs(cpu, bus, op),
        FNegS => exec_fnegs(cpu, bus, op),
        FAbsS => exec_fabss(cpu, bus, op),
        FSqrtS => exec_fsqrts(cpu, bus, op),
        FSqrtD => exec_fsqrtd(cpu, bus, op),
        FAddS => exec_fadds(cpu, bus, op),
        FAddD => exec_faddd(cpu, bus, op),
        FSubS => exec_fsubs(cpu, bus, op),
        FSubD => exec_fsubd(cpu, bus, op),
        FMulS => exec_fmuls(cpu, bus, op),
        FMulD => exec_fmuld(cpu, bus, op),
        FDivS => exec_fdivs(cpu, bus, op),
        FDivD => exec_fdivd(cpu, bus, op),
        FsMulD => exec_fsmuld(cpu, bus, op),
        FiToS => exec_fitos(cpu, bus, op),
        FiToD => exec_fitod(cpu, bus, op),
        FsToI => exec_fstoi(cpu, bus, op),
        FdToI => exec_fdtoi(cpu, bus, op),
        FsToD => exec_fstod(cpu, bus, op),
        FdToS => exec_fdtos(cpu, bus, op),
    }
}

/// Error for an always-trapping table entry (`OpKind::Stub`): the
/// same payloads the trap-stub exec fns carry, built inline so the
/// hot loops never need their fn pointers.
#[cold]
fn stub_err(op: &DecodedOp) -> ExecError {
    match op.aux {
        0 => Trap::Illegal {
            pc: op.pc,
            word: op.imm,
        }
        .into(),
        1 => Trap::FpDisabled { pc: op.pc }.into(),
        2 => Trap::OddFpPair { pc: op.pc }.into(),
        3 => Trap::OddIntPair { pc: op.pc }.into(),
        _ => ExecError::NotLinear { pc: op.pc },
    }
}

/// Executes one threaded op, inlining the hot kinds at the call site.
///
/// A pure fn-pointer loop pays a call/ret plus an opaque optimization
/// barrier on every instruction; measured on the FSE kernel that is
/// slower than the block path's inlined match. The `OpKind` tag lets
/// the run loops keep the flat predecoded table but burn the common
/// shapes (ALU, integer load/store, `sethi`, guards) into one branch
/// target each, falling back to the indirect call for the long tail.
///
/// Each inline arm calls the *same* function its table pointer names
/// (or its const-generic instantiation), and both the pointer and the
/// tag are chosen by the same predecode arm, so the two dispatch
/// roads cannot diverge semantically. A corrupted table entry
/// ([`ThreadedCache::corrupt`]) carries the default `Generic` tag and
/// therefore still reaches its routing-violation stub.
#[inline(always)]
fn exec_top(t: &TOp, cpu: &mut Cpu, bus: &mut Bus) -> Result<Flow, ExecError> {
    let op = &t.op;
    match op.kind {
        OpKind::Generic => (t.exec)(cpu, bus, op),
        OpKind::Nop => Ok(Flow::Next),
        OpKind::Sethi => exec_sethi(cpu, bus, op),
        OpKind::AluImm => {
            let a = cpu.get(reg(op.rs1));
            let r = exec_alu(cpu, ALU_OPS[op.aux as usize], a, op.imm, op.pc)?;
            cpu.set(reg(op.rd), r);
            Ok(Flow::Next)
        }
        OpKind::AluReg => {
            let a = cpu.get(reg(op.rs1));
            let b = cpu.get(reg(op.rs2));
            let r = exec_alu(cpu, ALU_OPS[op.aux as usize], a, b, op.pc)?;
            cpu.set(reg(op.rd), r);
            Ok(Flow::Next)
        }
        OpKind::LoadImm => match op.aux {
            0 => exec_load_c::<0, false, true>(cpu, bus, op),
            1 => exec_load_c::<1, false, true>(cpu, bus, op),
            2 => exec_load_c::<2, false, true>(cpu, bus, op),
            3 => exec_load_c::<3, false, true>(cpu, bus, op),
            4 => exec_load_c::<0, true, true>(cpu, bus, op),
            _ => exec_load_c::<1, true, true>(cpu, bus, op),
        },
        OpKind::LoadReg => match op.aux {
            0 => exec_load_c::<0, false, false>(cpu, bus, op),
            1 => exec_load_c::<1, false, false>(cpu, bus, op),
            2 => exec_load_c::<2, false, false>(cpu, bus, op),
            3 => exec_load_c::<3, false, false>(cpu, bus, op),
            4 => exec_load_c::<0, true, false>(cpu, bus, op),
            _ => exec_load_c::<1, true, false>(cpu, bus, op),
        },
        OpKind::StoreImm => match op.aux {
            0 => exec_store_c::<0, true>(cpu, bus, op),
            1 => exec_store_c::<1, true>(cpu, bus, op),
            2 => exec_store_c::<2, true>(cpu, bus, op),
            _ => exec_store_c::<3, true>(cpu, bus, op),
        },
        OpKind::StoreReg => match op.aux {
            0 => exec_store_c::<0, false>(cpu, bus, op),
            1 => exec_store_c::<1, false>(cpu, bus, op),
            2 => exec_store_c::<2, false>(cpu, bus, op),
            _ => exec_store_c::<3, false>(cpu, bus, op),
        },
        OpKind::GuardTaken => guard_taken::<false>(cpu, bus, op),
        OpKind::GuardTakenAnnul => guard_taken::<true>(cpu, bus, op),
        OpKind::GuardUntaken => guard_untaken(cpu, bus, op),
        OpKind::GuardFTaken => guard_ftaken::<false>(cpu, bus, op),
        OpKind::GuardFTakenAnnul => guard_ftaken::<true>(cpu, bus, op),
        OpKind::GuardFUntaken => guard_funtaken(cpu, bus, op),
        OpKind::CallLink => exec_call_link(cpu, bus, op),
        OpKind::RdY => exec_rdy(cpu, bus, op),
        OpKind::WrYImm => exec_wry_c::<true>(cpu, bus, op),
        OpKind::WrYReg => exec_wry_c::<false>(cpu, bus, op),
        OpKind::SaveImm => exec_save_c::<true>(cpu, bus, op),
        OpKind::SaveReg => exec_save_c::<false>(cpu, bus, op),
        OpKind::RestoreImm => exec_restore_c::<true>(cpu, bus, op),
        OpKind::RestoreReg => exec_restore_c::<false>(cpu, bus, op),
        OpKind::LoadFImm => {
            if op.aux != 0 {
                exec_loadf_c::<true, true>(cpu, bus, op)
            } else {
                exec_loadf_c::<false, true>(cpu, bus, op)
            }
        }
        OpKind::LoadFReg => {
            if op.aux != 0 {
                exec_loadf_c::<true, false>(cpu, bus, op)
            } else {
                exec_loadf_c::<false, false>(cpu, bus, op)
            }
        }
        OpKind::StoreFImm => {
            if op.aux != 0 {
                exec_storef_c::<true, true>(cpu, bus, op)
            } else {
                exec_storef_c::<false, true>(cpu, bus, op)
            }
        }
        OpKind::StoreFReg => {
            if op.aux != 0 {
                exec_storef_c::<true, false>(cpu, bus, op)
            } else {
                exec_storef_c::<false, false>(cpu, bus, op)
            }
        }
        OpKind::Fp => exec_fp_aux(cpu, bus, op),
        OpKind::FCmpS => exec_fcmps(cpu, bus, op),
        OpKind::FCmpD => exec_fcmpd(cpu, bus, op),
        OpKind::Stub => Err(stub_err(op)),
    }
}

/// Runs a linear slice of the dispatch table until every op retires or
/// one errors out. Returns the retired-op count and the stopping
/// error, if any. Outlined from the machine run loop for the same
/// register-allocation reason as [`Trace::run`].
#[inline(never)]
pub(crate) fn run_tops(tops: &[TOp], cpu: &mut Cpu, bus: &mut Bus) -> (usize, Option<ExecError>) {
    for (k, t) in tops.iter().enumerate() {
        if let Err(e) = exec_top(t, cpu, bus) {
            return (k, Some(e));
        }
    }
    (tops.len(), None)
}

// ---------------------------------------------------------------------------
// Predecode: instruction -> threaded op
// ---------------------------------------------------------------------------

fn load_fn(size: MemSize, signed: bool, imm: bool) -> ExecFn {
    match (size, signed, imm) {
        (MemSize::Byte, false, false) => exec_load_c::<0, false, false>,
        (MemSize::Byte, false, true) => exec_load_c::<0, false, true>,
        (MemSize::Byte, true, false) => exec_load_c::<0, true, false>,
        (MemSize::Byte, true, true) => exec_load_c::<0, true, true>,
        (MemSize::Half, false, false) => exec_load_c::<1, false, false>,
        (MemSize::Half, false, true) => exec_load_c::<1, false, true>,
        (MemSize::Half, true, false) => exec_load_c::<1, true, false>,
        (MemSize::Half, true, true) => exec_load_c::<1, true, true>,
        (MemSize::Word, _, false) => exec_load_c::<2, false, false>,
        (MemSize::Word, _, true) => exec_load_c::<2, false, true>,
        (MemSize::Double, _, false) => exec_load_c::<3, false, false>,
        (MemSize::Double, _, true) => exec_load_c::<3, false, true>,
    }
}

fn store_fn(size: MemSize, imm: bool) -> ExecFn {
    match (size, imm) {
        (MemSize::Byte, false) => exec_store_c::<0, false>,
        (MemSize::Byte, true) => exec_store_c::<0, true>,
        (MemSize::Half, false) => exec_store_c::<1, false>,
        (MemSize::Half, true) => exec_store_c::<1, true>,
        (MemSize::Word, false) => exec_store_c::<2, false>,
        (MemSize::Word, true) => exec_store_c::<2, true>,
        (MemSize::Double, false) => exec_store_c::<3, false>,
        (MemSize::Double, true) => exec_store_c::<3, true>,
    }
}

fn fpop_fn(op: FpOp) -> ExecFn {
    use FpOp::*;
    match op {
        FMovS => exec_fmovs,
        FNegS => exec_fnegs,
        FAbsS => exec_fabss,
        FSqrtS => exec_fsqrts,
        FSqrtD => exec_fsqrtd,
        FAddS => exec_fadds,
        FAddD => exec_faddd,
        FSubS => exec_fsubs,
        FSubD => exec_fsubd,
        FMulS => exec_fmuls,
        FMulD => exec_fmuld,
        FDivS => exec_fdivs,
        FDivD => exec_fdivd,
        FsMulD => exec_fsmuld,
        FiToS => exec_fitos,
        FiToD => exec_fitod,
        FsToI => exec_fstoi,
        FdToI => exec_fdtoi,
        FsToD => exec_fstod,
        FdToS => exec_fdtos,
    }
}

/// True when `op`'s double-precision operands all name even registers
/// (the evenness `exec_fpop` enforces at run time, hoisted to
/// predecode; violators dispatch straight to [`exec_odd_fp_pair`]).
fn fp_even_ok(op: FpOp, rd: FReg, rs1: FReg, rs2: FReg) -> bool {
    use FpOp::*;
    match op {
        FSqrtD => rs2.is_even() && rd.is_even(),
        FAddD | FSubD | FMulD | FDivD => rs1.is_even() && rs2.is_even() && rd.is_even(),
        FsMulD | FiToD | FsToD => rd.is_even(),
        FdToI | FdToS => rs2.is_even(),
        _ => true,
    }
}

/// Splits `op2` into the decoded record; returns the `IMM` selector.
fn split_op2(op2: Operand, d: &mut DecodedOp) -> bool {
    match op2 {
        Operand::Reg(r) => {
            d.rs2 = r.num();
            false
        }
        Operand::Imm(v) => {
            d.imm = v as u32;
            true
        }
    }
}

/// Predecodes one instruction into its threaded op. Shape decisions
/// that `exec_linear` makes per retirement — operand form, width,
/// signedness, FPU presence, register-pair evenness — are made once
/// here and burned into the function pointer.
/// `SIZE` code used by the const-generic memory fns and `aux` tags:
/// 0 = byte, 1 = half, 2 = word, 3 = doubleword.
fn size_code(size: MemSize) -> u8 {
    match size {
        MemSize::Byte => 0,
        MemSize::Half => 1,
        MemSize::Word => 2,
        MemSize::Double => 3,
    }
}

fn top_for(instr: Instr, pc: u32, fpu: bool) -> TOp {
    let mut d = DecodedOp::at(pc);
    let exec: ExecFn = match instr {
        Instr::Sethi { rd, imm22 } => {
            if rd.is_zero() {
                d.kind = OpKind::Nop;
                exec_nop
            } else {
                d.rd = rd.num();
                d.imm = imm22 << 10;
                d.kind = OpKind::Sethi;
                exec_sethi
            }
        }
        Instr::Alu { op, rd, rs1, op2 } => {
            d.rd = rd.num();
            d.rs1 = rs1.num();
            let imm = split_op2(op2, &mut d);
            d.kind = if imm { OpKind::AluImm } else { OpKind::AluReg };
            d.aux = op as u8;
            alu_fn(op, imm)
        }
        Instr::RdY { rd } => {
            d.rd = rd.num();
            d.kind = OpKind::RdY;
            exec_rdy
        }
        Instr::WrY { rs1, op2 } => {
            d.rs1 = rs1.num();
            if split_op2(op2, &mut d) {
                d.kind = OpKind::WrYImm;
                exec_wry_c::<true>
            } else {
                d.kind = OpKind::WrYReg;
                exec_wry_c::<false>
            }
        }
        Instr::Save { rd, rs1, op2 } => {
            d.rd = rd.num();
            d.rs1 = rs1.num();
            if split_op2(op2, &mut d) {
                d.kind = OpKind::SaveImm;
                exec_save_c::<true>
            } else {
                d.kind = OpKind::SaveReg;
                exec_save_c::<false>
            }
        }
        Instr::Restore { rd, rs1, op2 } => {
            d.rd = rd.num();
            d.rs1 = rs1.num();
            if split_op2(op2, &mut d) {
                d.kind = OpKind::RestoreImm;
                exec_restore_c::<true>
            } else {
                d.kind = OpKind::RestoreReg;
                exec_restore_c::<false>
            }
        }
        Instr::Flush { .. } => {
            d.kind = OpKind::Nop;
            exec_nop
        }
        Instr::Load {
            size,
            signed,
            rd,
            rs1,
            op2,
        } => {
            d.rd = rd.num();
            d.rs1 = rs1.num();
            let imm = split_op2(op2, &mut d);
            if size == MemSize::Double && rd.num() % 2 != 0 {
                d.kind = OpKind::Stub;
                d.aux = 3;
                exec_odd_int_pair
            } else {
                d.kind = if imm {
                    OpKind::LoadImm
                } else {
                    OpKind::LoadReg
                };
                // Signedness only exists below word width (mirrors
                // `load_fn`, which maps word/double to SIGNED=false).
                let sgn = signed && matches!(size, MemSize::Byte | MemSize::Half);
                d.aux = size_code(size) | (sgn as u8) << 2;
                load_fn(size, signed, imm)
            }
        }
        Instr::Store { size, rd, rs1, op2 } => {
            d.rd = rd.num();
            d.rs1 = rs1.num();
            let imm = split_op2(op2, &mut d);
            if size == MemSize::Double && rd.num() % 2 != 0 {
                d.kind = OpKind::Stub;
                d.aux = 3;
                exec_odd_int_pair
            } else {
                d.kind = if imm {
                    OpKind::StoreImm
                } else {
                    OpKind::StoreReg
                };
                d.aux = size_code(size);
                store_fn(size, imm)
            }
        }
        Instr::LoadF {
            double,
            rd,
            rs1,
            op2,
        } => {
            d.rd = rd.num();
            d.rs1 = rs1.num();
            let imm = split_op2(op2, &mut d);
            if !fpu {
                d.kind = OpKind::Stub;
                d.aux = 1;
                exec_fp_disabled
            } else if double && !rd.is_even() {
                d.kind = OpKind::Stub;
                d.aux = 2;
                exec_odd_fp_pair
            } else {
                d.kind = if imm {
                    OpKind::LoadFImm
                } else {
                    OpKind::LoadFReg
                };
                d.aux = double as u8;
                match (double, imm) {
                    (false, false) => exec_loadf_c::<false, false>,
                    (false, true) => exec_loadf_c::<false, true>,
                    (true, false) => exec_loadf_c::<true, false>,
                    (true, true) => exec_loadf_c::<true, true>,
                }
            }
        }
        Instr::StoreF {
            double,
            rd,
            rs1,
            op2,
        } => {
            d.rd = rd.num();
            d.rs1 = rs1.num();
            let imm = split_op2(op2, &mut d);
            if !fpu {
                d.kind = OpKind::Stub;
                d.aux = 1;
                exec_fp_disabled
            } else if double && !rd.is_even() {
                d.kind = OpKind::Stub;
                d.aux = 2;
                exec_odd_fp_pair
            } else {
                d.kind = if imm {
                    OpKind::StoreFImm
                } else {
                    OpKind::StoreFReg
                };
                d.aux = double as u8;
                match (double, imm) {
                    (false, false) => exec_storef_c::<false, false>,
                    (false, true) => exec_storef_c::<false, true>,
                    (true, false) => exec_storef_c::<true, false>,
                    (true, true) => exec_storef_c::<true, true>,
                }
            }
        }
        Instr::FpOp { op, rd, rs1, rs2 } => {
            d.rd = rd.num();
            d.rs1 = rs1.num();
            d.rs2 = rs2.num();
            if !fpu {
                d.kind = OpKind::Stub;
                d.aux = 1;
                exec_fp_disabled
            } else if !fp_even_ok(op, rd, rs1, rs2) {
                d.kind = OpKind::Stub;
                d.aux = 2;
                exec_odd_fp_pair
            } else {
                d.kind = OpKind::Fp;
                d.aux = op as u8;
                fpop_fn(op)
            }
        }
        Instr::FCmp {
            double, rs1, rs2, ..
        } => {
            d.rs1 = rs1.num();
            d.rs2 = rs2.num();
            if !fpu {
                d.kind = OpKind::Stub;
                d.aux = 1;
                exec_fp_disabled
            } else if double && (!rs1.is_even() || !rs2.is_even()) {
                d.kind = OpKind::Stub;
                d.aux = 2;
                exec_odd_fp_pair
            } else if double {
                d.kind = OpKind::FCmpD;
                exec_fcmpd
            } else {
                d.kind = OpKind::FCmpS;
                exec_fcmps
            }
        }
        Instr::Unimp { const22 } => {
            d.imm = const22;
            d.kind = OpKind::Stub;
            exec_illegal
        }
        Instr::Illegal { word } => {
            d.imm = word;
            d.kind = OpKind::Stub;
            exec_illegal
        }
        // Block enders never execute through the linear table.
        Instr::Branch { .. }
        | Instr::FBranch { .. }
        | Instr::Call { .. }
        | Instr::Jmpl { .. }
        | Instr::Ticc { .. } => {
            d.kind = OpKind::Stub;
            d.aux = 4;
            exec_not_linear
        }
    };
    TOp { exec, op: d }
}

/// Flat threaded dispatch table: one [`TOp`] per predecoded image
/// instruction, same indexing as the image (`(pc - base) / 4`).
#[derive(Debug)]
pub(crate) struct ThreadedCache {
    ops: Vec<TOp>,
}

impl ThreadedCache {
    /// Predecodes the whole image. `fpu` is the machine's FPU
    /// configuration, which is fixed for the machine's lifetime.
    pub fn build(code: &[(Instr, Category)], base: u32, fpu: bool) -> Self {
        let ops = code
            .iter()
            .enumerate()
            .map(|(i, &(instr, _))| top_for(instr, base.wrapping_add((i as u32) * 4), fpu))
            .collect();
        ThreadedCache { ops }
    }

    pub fn ops(&self) -> &[TOp] {
        &self.ops
    }

    /// Test hook: overwrites entry `index` with the routing-violation
    /// stub, simulating a corrupted dispatch table. The machine must
    /// surface execution of it as `SimError::DispatchViolation`, not a
    /// panic.
    pub fn corrupt(&mut self, index: usize) {
        let pc = self.ops[index].op.pc;
        self.ops[index] = TOp {
            exec: exec_not_linear,
            op: DecodedOp::at(pc),
        };
    }
}

// ---------------------------------------------------------------------------
// Superblock traces
// ---------------------------------------------------------------------------

/// How a trace run ended.
#[derive(Debug, Clone, Copy)]
pub(crate) enum TraceHalt {
    /// Every op retired; the machine commits the whole trace and
    /// continues sequentially at [`Trace::end_pc`].
    Completed,
    /// A guard side-exited after `retired` ops (the guard's branch
    /// itself retired); the guard already wrote the architectural
    /// `pc`/`npc`.
    Exited { retired: usize },
    /// Op `at` faulted without retiring; the machine restores
    /// [`Trace::meta`]`(at)` and settles the error.
    Trapped { at: usize, err: ExecError },
}

/// A superblock: a straight-line op sequence spanning one or more
/// basic blocks chained across predicted branches. Bookkeeping
/// parallels the block cache — per-op architectural state for trap
/// restoration and category prefix sums for one-commit accounting.
#[derive(Debug)]
pub(crate) struct Trace {
    ops: Vec<TOp>,
    /// `meta[k]` = the `(pc, npc)` the stepping path would hold when
    /// about to execute op `k`; restored when op `k` traps.
    meta: Vec<(u32, u32)>,
    /// `prefix[k]` = category counts of `ops[0..k]`.
    prefix: Vec<CategoryCounts>,
    /// Sequential continuation pc after the trace completes.
    end_pc: u32,
}

impl Trace {
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    pub fn end_pc(&self) -> u32 {
        self.end_pc
    }

    pub fn meta(&self, k: usize) -> (u32, u32) {
        self.meta[k]
    }

    /// Category counts of the first `k` ops.
    pub fn counts_upto(&self, k: usize) -> CategoryCounts {
        self.prefix[k]
    }

    /// Executes the trace. The caller commits instret/counts/pc/npc
    /// from the returned halt; this loop touches only cpu/bus state.
    ///
    /// Deliberately not inlined: the loop body carries the whole
    /// inline-dispatch match, and folding that into the machine's
    /// (large) run loop measurably degrades its register allocation.
    #[inline(never)]
    pub fn run(&self, cpu: &mut Cpu, bus: &mut Bus) -> TraceHalt {
        for (k, t) in self.ops.iter().enumerate() {
            match exec_top(t, cpu, bus) {
                Ok(Flow::Next) => {}
                Ok(Flow::Exit) => return TraceHalt::Exited { retired: k + 1 },
                Err(err) => return TraceHalt::Trapped { at: k, err },
            }
        }
        TraceHalt::Completed
    }
}

/// Build outcome for a trace head.
#[derive(Debug)]
pub(crate) enum TraceSlot {
    /// Not yet attempted.
    Untried,
    /// Attempted, but no chaining opportunity was found (single block);
    /// the plain threaded-block path is already optimal there.
    Absent,
    /// A formed superblock.
    Present(Box<Trace>),
}

/// Per-image trace table: lazily built superblocks keyed by block
/// leader index. Only leaders ([`leaders`]) become trace heads — which
/// is what makes the `t<cond>` fall-through leader fix load-bearing:
/// a missed leader is a never-traced block.
#[derive(Debug)]
pub(crate) struct TraceCache {
    slots: Vec<TraceSlot>,
    head: Vec<bool>,
}

impl TraceCache {
    pub fn new(code: &[(Instr, Category)], base: u32) -> Self {
        let mut head = vec![false; code.len()];
        for i in leaders(code, base) {
            head[i] = true;
        }
        let slots = (0..code.len()).map(|_| TraceSlot::Untried).collect();
        TraceCache { slots, head }
    }

    #[inline]
    pub fn is_head(&self, i: usize) -> bool {
        self.head[i]
    }

    #[inline]
    pub fn slot(&self, i: usize) -> &TraceSlot {
        &self.slots[i]
    }

    #[inline]
    pub fn is_untried(&self, i: usize) -> bool {
        matches!(self.slots[i], TraceSlot::Untried)
    }

    pub fn set(&mut self, i: usize, slot: TraceSlot) {
        self.slots[i] = slot;
    }
}

/// Forms a superblock starting at block leader `start`.
///
/// The trace inlines straight-line runs from the block cache and
/// chains across control transfers while the transfer is statically
/// predictable:
///
/// - `ba`/`fba` (annulled or not) and `call` chain unconditionally;
/// - conditional branches follow BTFN (backward target predicted
///   taken, forward predicted not taken), enforced by a guard op that
///   side-exits with exact architectural state when the prediction
///   fails;
/// - `jmpl` (dynamic target) and `t<cond>` (software trap) end the
///   trace.
///
/// A taken chain requires the delay slot to be a linear in-image
/// instruction and the target to be in-image; an annulled delay slot
/// is simply not emitted (it never retires, exactly like stepping).
/// Formation stops at loop closure (re-visiting a block already in the
/// trace — this is what turns one FSE inner-loop iteration into one
/// trace) or at [`MAX_TRACE_OPS`].
pub(crate) fn build_trace(
    code: &[(Instr, Category)],
    base: u32,
    blocks: &BlockCache,
    tops: &[TOp],
    fpu: bool,
    start: usize,
) -> TraceSlot {
    let n = code.len();
    let pc_of = |i: usize| base.wrapping_add((i as u32) * 4);
    let mut ops: Vec<TOp> = Vec::new();
    let mut meta: Vec<(u32, u32)> = Vec::new();
    let mut cats: Vec<Category> = Vec::new();
    let mut chained = 0usize;
    let mut visited: HashSet<usize> = HashSet::new();
    visited.insert(start);
    let mut cur = start;
    let end_pc;
    'build: loop {
        let run_end = blocks.run_end(cur);
        for i in cur..run_end {
            if ops.len() >= MAX_TRACE_OPS {
                end_pc = pc_of(i);
                break 'build;
            }
            ops.push(tops[i]);
            meta.push((pc_of(i), pc_of(i).wrapping_add(4)));
            cats.push(code[i].1);
        }
        if run_end >= n {
            // Ran off the image end; continuation is sequential.
            end_pc = pc_of(run_end);
            break;
        }
        let e = run_end;
        let epc = pc_of(e);
        if ops.len() + 2 > MAX_TRACE_OPS {
            end_pc = epc;
            break;
        }
        let ecat = code[e].1;
        // A taken chain inlines the delay slot, which must exist and
        // be linear (a CTI in a delay slot is left to the step path).
        let delay_ok = e + 1 < n && !code[e + 1].0.ends_block();
        let mut push = |t: TOp, m: (u32, u32), c: Category| {
            ops.push(t);
            meta.push(m);
            cats.push(c);
        };
        let next = match code[e].0 {
            Instr::Branch {
                cond,
                annul,
                disp22,
            } => {
                let target = epc.wrapping_add((disp22 as u32).wrapping_mul(4));
                let t = target.wrapping_sub(base) as usize / 4;
                let t_ok = target.is_multiple_of(4) && target >= base && t < n;
                if cond == ICond::A {
                    if !t_ok || (!annul && !delay_ok) {
                        end_pc = epc;
                        break;
                    }
                    push(
                        TOp {
                            exec: exec_retire,
                            op: DecodedOp {
                                kind: OpKind::Nop,
                                ..DecodedOp::at(epc)
                            },
                        },
                        (epc, epc.wrapping_add(4)),
                        ecat,
                    );
                    if !annul {
                        // `ba` executes its delay slot; `ba,a` annuls
                        // it (never retires, so never emitted).
                        push(tops[e + 1], (pc_of(e + 1), target), code[e + 1].1);
                    }
                    chained += 1;
                    t
                } else if cond != ICond::N && target <= epc {
                    // Backward conditional: predict taken (BTFN).
                    if !t_ok || !delay_ok {
                        end_pc = epc;
                        break;
                    }
                    let mut gop = DecodedOp::at(epc);
                    gop.mask = icc_mask(cond);
                    let g: ExecFn = if annul {
                        gop.kind = OpKind::GuardTakenAnnul;
                        guard_taken::<true>
                    } else {
                        gop.kind = OpKind::GuardTaken;
                        guard_taken::<false>
                    };
                    push(TOp { exec: g, op: gop }, (epc, epc.wrapping_add(4)), ecat);
                    push(tops[e + 1], (pc_of(e + 1), target), code[e + 1].1);
                    chained += 1;
                    t
                } else {
                    // Forward (or never-taken) conditional: predict not
                    // taken. The guard's taken-exit only writes
                    // pc/npc, so an out-of-image target is fine.
                    if !annul && !delay_ok {
                        end_pc = epc;
                        break;
                    }
                    let mut gop = DecodedOp::at(epc);
                    gop.mask = icc_mask(cond);
                    gop.imm = target;
                    gop.kind = OpKind::GuardUntaken;
                    push(
                        TOp {
                            exec: guard_untaken,
                            op: gop,
                        },
                        (epc, epc.wrapping_add(4)),
                        ecat,
                    );
                    if !annul {
                        // Untaken non-annulling branch still executes
                        // its delay slot.
                        push(tops[e + 1], (pc_of(e + 1), pc_of(e + 2)), code[e + 1].1);
                    }
                    chained += 1;
                    e + 2
                }
            }
            Instr::FBranch {
                cond,
                annul,
                disp22,
            } if fpu => {
                let target = epc.wrapping_add((disp22 as u32).wrapping_mul(4));
                let t = target.wrapping_sub(base) as usize / 4;
                let t_ok = target.is_multiple_of(4) && target >= base && t < n;
                if cond == FCond::A {
                    if !t_ok || (!annul && !delay_ok) {
                        end_pc = epc;
                        break;
                    }
                    push(
                        TOp {
                            exec: exec_retire,
                            op: DecodedOp {
                                kind: OpKind::Nop,
                                ..DecodedOp::at(epc)
                            },
                        },
                        (epc, epc.wrapping_add(4)),
                        ecat,
                    );
                    if !annul {
                        push(tops[e + 1], (pc_of(e + 1), target), code[e + 1].1);
                    }
                    chained += 1;
                    t
                } else if cond != FCond::N && target <= epc {
                    if !t_ok || !delay_ok {
                        end_pc = epc;
                        break;
                    }
                    let mut gop = DecodedOp::at(epc);
                    gop.mask = fcc_mask(cond);
                    let g: ExecFn = if annul {
                        gop.kind = OpKind::GuardFTakenAnnul;
                        guard_ftaken::<true>
                    } else {
                        gop.kind = OpKind::GuardFTaken;
                        guard_ftaken::<false>
                    };
                    push(TOp { exec: g, op: gop }, (epc, epc.wrapping_add(4)), ecat);
                    push(tops[e + 1], (pc_of(e + 1), target), code[e + 1].1);
                    chained += 1;
                    t
                } else {
                    if !annul && !delay_ok {
                        end_pc = epc;
                        break;
                    }
                    let mut gop = DecodedOp::at(epc);
                    gop.mask = fcc_mask(cond);
                    gop.imm = target;
                    gop.kind = OpKind::GuardFUntaken;
                    push(
                        TOp {
                            exec: guard_funtaken,
                            op: gop,
                        },
                        (epc, epc.wrapping_add(4)),
                        ecat,
                    );
                    if !annul {
                        push(tops[e + 1], (pc_of(e + 1), pc_of(e + 2)), code[e + 1].1);
                    }
                    chained += 1;
                    e + 2
                }
            }
            Instr::Call { disp30 } => {
                let target = epc.wrapping_add((disp30 as u32).wrapping_mul(4));
                let t = target.wrapping_sub(base) as usize / 4;
                let t_ok = target.is_multiple_of(4) && target >= base && t < n;
                if !t_ok || !delay_ok {
                    end_pc = epc;
                    break;
                }
                push(
                    TOp {
                        exec: exec_call_link,
                        op: DecodedOp {
                            kind: OpKind::CallLink,
                            ..DecodedOp::at(epc)
                        },
                    },
                    (epc, epc.wrapping_add(4)),
                    ecat,
                );
                push(tops[e + 1], (pc_of(e + 1), target), code[e + 1].1);
                chained += 1;
                t
            }
            // Dynamic targets (`jmpl`), software traps (`t<cond>`),
            // and FPU branches on a no-FPU machine (which trap): the
            // trace ends at the block boundary.
            _ => {
                end_pc = epc;
                break;
            }
        };
        if next >= n || visited.contains(&next) {
            // Off-image continuation or loop closure: the trace ends
            // in a sequential state at the next block's entry.
            end_pc = pc_of(next);
            break;
        }
        visited.insert(next);
        cur = next;
    }
    if chained == 0 {
        return TraceSlot::Absent;
    }
    let mut prefix = Vec::with_capacity(ops.len() + 1);
    let mut acc = CategoryCounts::new();
    prefix.push(acc);
    for &c in &cats {
        acc.bump(c);
        prefix.push(acc);
    }
    TraceSlot::Present(Box::new(Trace {
        ops,
        meta,
        prefix,
        end_pc,
    }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use nfp_sparc::asm::Assembler;
    use nfp_sparc::{decode, AluOp};

    fn predecode(words: &[u32]) -> Vec<(Instr, Category)> {
        words
            .iter()
            .map(|&w| {
                let i = decode(w);
                (i, i.category())
            })
            .collect()
    }

    #[test]
    fn icc_masks_match_cond_eval() {
        for bits in 0..16u8 {
            let cond = ICond::from_bits(bits);
            let mask = icc_mask(cond);
            for i in 0..16u16 {
                let want = cond.eval(i & 8 != 0, i & 4 != 0, i & 2 != 0, i & 1 != 0);
                assert_eq!((mask >> i) & 1 != 0, want, "{cond:?} state {i}");
            }
        }
        assert_eq!(icc_mask(ICond::A), 0xffff);
        assert_eq!(icc_mask(ICond::N), 0);
    }

    #[test]
    fn fcc_masks_match_cond_eval() {
        let fccs = [
            FccValue::Equal,
            FccValue::Less,
            FccValue::Greater,
            FccValue::Unordered,
        ];
        for bits in 0..16u8 {
            let cond = FCond::from_bits(bits);
            let mask = fcc_mask(cond);
            for (i, &fcc) in fccs.iter().enumerate() {
                assert_eq!((mask >> i) & 1 != 0, cond.eval(fcc), "{cond:?} {fcc:?}");
            }
        }
    }

    #[test]
    fn backward_loop_forms_a_single_trace_per_iteration() {
        // mov 10, %l0; loop: subcc; bne loop; nop (delay); mov; ta 0
        let mut a = Assembler::new(0x4000_0000);
        a.mov(10, nfp_sparc::Reg::l(0));
        a.label("loop");
        a.alu(AluOp::SubCc, nfp_sparc::Reg::l(0), 1, nfp_sparc::Reg::l(0));
        a.b(ICond::Ne, "loop");
        a.nop();
        a.mov(0, nfp_sparc::Reg::o(0));
        a.ta(0);
        let code = predecode(&a.finish().unwrap());
        let blocks = BlockCache::build(&code);
        let tc = ThreadedCache::build(&code, 0x4000_0000, true);
        // Head at the loop body (index 1, the backward target).
        let slot = build_trace(&code, 0x4000_0000, &blocks, tc.ops(), true, 1);
        let TraceSlot::Present(trace) = slot else {
            panic!("backward loop must form a trace, got {slot:?}");
        };
        // subcc, guard(bne), delay nop — one full loop iteration.
        assert_eq!(trace.len(), 3);
        // Loop closure: continuation is the loop head itself.
        assert_eq!(trace.end_pc(), 0x4000_0004);
        // Guard meta points at the branch with sequential npc.
        assert_eq!(trace.meta(1), (0x4000_0008, 0x4000_000c));
        // Delay-slot meta carries the taken-branch npc (the target).
        assert_eq!(trace.meta(2), (0x4000_000c, 0x4000_0004));
    }

    #[test]
    fn straight_line_block_yields_no_trace() {
        let mut a = Assembler::new(0x4000_0000);
        a.mov(1, nfp_sparc::Reg::o(0));
        a.ta(0);
        let code = predecode(&a.finish().unwrap());
        let blocks = BlockCache::build(&code);
        let tc = ThreadedCache::build(&code, 0x4000_0000, true);
        let slot = build_trace(&code, 0x4000_0000, &blocks, tc.ops(), true, 0);
        assert!(matches!(slot, TraceSlot::Absent), "got {slot:?}");
    }

    #[test]
    fn trace_formation_terminates_on_self_loop_and_caps() {
        // ba,a . — an annulled self-loop: one retire op, closed at once.
        let mut a = Assembler::new(0x4000_0000);
        a.label("spin");
        a.b_a(ICond::A, "spin");
        let code = predecode(&a.finish().unwrap());
        let blocks = BlockCache::build(&code);
        let tc = ThreadedCache::build(&code, 0x4000_0000, true);
        let slot = build_trace(&code, 0x4000_0000, &blocks, tc.ops(), true, 0);
        let TraceSlot::Present(trace) = slot else {
            panic!("self-loop must form a trace");
        };
        assert_eq!(trace.len(), 1);
        assert_eq!(trace.end_pc(), 0x4000_0000);
        assert!(trace.len() <= MAX_TRACE_OPS);
    }
}
