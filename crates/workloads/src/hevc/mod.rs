//! The mini-HEVC codec: a compact hybrid video codec with the
//! algorithmic ingredients of the paper's HEVC workload — intra
//! prediction, motion-compensated inter prediction (P and B frames),
//! an 8×8 integer transform with quantisation, Exp-Golomb entropy
//! coding, in-loop deblocking, and a small number of double-precision
//! statistics operations (mirroring the HM decoder's "few floating
//! point operations").
//!
//! * [`encoder`] — native Rust encoder (runs on the host);
//! * [`native`] — native Rust reference decoder;
//! * [`minic`] — the decoder as a generated mini-C program for the
//!   simulated target;
//! * [`bitstream`], [`tables`], [`common`] — shared layers.

pub mod bitstream;
pub mod common;
pub mod encoder;
pub mod minic;
pub mod native;
pub mod tables;

pub use encoder::{encode, Config, Encoded};
pub use native::{decode, Decoded};
