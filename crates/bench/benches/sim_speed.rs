//! Fig. 1 micro-benchmark: simulation speed of the three simulator
//! layers on the same workload.
//!
//! * bare ISS (functional only — the fastest point of Fig. 1's x-axis),
//! * ISS with the paper's category counters (the proposed layer;
//!   the overhead of counting is the paper's "only slightly increased
//!   simulation times"),
//! * the detailed hardware model (the CAS-like slow/accurate end).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use nfp_cc::FloatMode;
use nfp_sim::{Machine, MachineConfig};
use nfp_testbed::{HwModel, HwObserver};
use nfp_workloads::{hevc_kernels, machine_for, Kernel, Preset, INPUT_BASE};

fn kernel() -> Kernel {
    hevc_kernels(&Preset::quick()).into_iter().next().unwrap()
}

fn instret(kernel: &Kernel) -> u64 {
    let mut machine = machine_for(kernel, FloatMode::Hard);
    machine.run(u64::MAX).unwrap().instret
}

fn bench_sim_layers(c: &mut Criterion) {
    let kernel = kernel();
    let n = instret(&kernel);
    let mut group = c.benchmark_group("sim_speed");
    group.throughput(Throughput::Elements(n));
    group.sample_size(10);

    group.bench_function("bare_iss", |b| {
        b.iter(|| {
            let program = nfp_workloads::program(kernel.workload, FloatMode::Hard);
            let mut machine = Machine::new(MachineConfig {
                count_categories: false,
                ..MachineConfig::default()
            });
            machine
                .load_image(program.base, &program.words)
                .expect("image fits in RAM");
            machine
                .bus
                .write_bytes(INPUT_BASE, &kernel.input)
                .expect("input fits in RAM");
            machine.run(u64::MAX).unwrap().instret
        })
    });

    group.bench_function("iss_with_counters", |b| {
        b.iter(|| {
            let mut machine = machine_for(&kernel, FloatMode::Hard);
            machine.run(u64::MAX).unwrap().instret
        })
    });

    group.bench_function("detailed_hw_model", |b| {
        b.iter(|| {
            let mut machine = machine_for(&kernel, FloatMode::Hard);
            let mut obs = HwObserver::new(HwModel::default());
            machine.run_observed(u64::MAX, &mut obs).unwrap();
            obs.totals().cycles
        })
    });

    group.finish();
}

criterion_group!(benches, bench_sim_layers);
criterion_main!(benches);
