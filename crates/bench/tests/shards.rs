//! Chaos suite for sharded campaigns: shards are killed mid-run,
//! journals are truncated and bit-flipped, stragglers are speculated —
//! and in every recoverable scenario the merged report must come out
//! byte-identical to an undisturbed sequential same-seed run, while
//! every unrecoverable tamper must be rejected with a typed error.

use nfp_bench::{
    merge_journals, peek_campaign, run_sharded, run_supervised, shard_journal_path, CampaignConfig,
    CampaignResult, Mode, ShardConfig, SupervisorConfig,
};
use nfp_core::NfpError;
use nfp_sim::Dispatch;
use nfp_workloads::{fse_kernels, Kernel, Preset};
use std::path::PathBuf;
use std::time::Duration;

fn kernel() -> Kernel {
    fse_kernels(&Preset::quick())
        .expect("quick preset builds")
        .into_iter()
        .next()
        .expect("quick preset has FSE kernels")
}

fn campaign(injections: usize) -> CampaignConfig {
    CampaignConfig {
        injections,
        seed: 0xfeed_5eed,
        ..CampaignConfig::default()
    }
}

/// The undisturbed sequential run every chaos scenario must reproduce.
fn sequential(k: &Kernel, injections: usize) -> CampaignResult {
    let mut cfg = SupervisorConfig::new(campaign(injections));
    cfg.workers = Some(1);
    run_supervised(k, Mode::Float, &cfg).unwrap().result
}

fn tmp_base(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("nfp_shards_{name}_{}.jsonl", std::process::id()))
}

/// A thread-isolation sharded config journaling under `name`'s base.
fn sharded(name: &str, injections: usize, shards: u32) -> (ShardConfig, PathBuf) {
    let mut sup = SupervisorConfig::new(campaign(injections));
    sup.workers = Some(1);
    let base = tmp_base(name);
    sup.journal = Some(base.clone());
    (ShardConfig::new(sup, shards), base)
}

/// Best-effort removal of every file a sharded run can leave behind.
fn scrub(base: &PathBuf, shards: u32) {
    let _ = std::fs::remove_file(base);
    for i in 0..shards {
        let canonical = shard_journal_path(base, i, shards);
        let mut quarantined = canonical.as_os_str().to_os_string();
        quarantined.push(".quarantined");
        let _ = std::fs::remove_file(&canonical);
        let _ = std::fs::remove_file(PathBuf::from(quarantined));
        let _ = std::fs::remove_file(base.with_extension(format!("shard{i}of{shards}.spec.jsonl")));
    }
}

fn assert_identical(got: &CampaignResult, want: &CampaignResult) {
    assert_eq!(got.records.len(), want.records.len());
    for (i, (g, w)) in got.records.iter().zip(&want.records).enumerate() {
        assert_eq!(g, w, "record {i} diverged from the sequential run");
    }
    assert_eq!(got.golden_instret, want.golden_instret);
    assert_eq!(got.report, want.report);
    assert_eq!(got.report.render(), want.report.render());
}

/// Rewrites one journal in place through `tamper`, which receives the
/// file's full text and returns the replacement.
fn rewrite(path: &PathBuf, tamper: impl FnOnce(String) -> String) {
    let text = std::fs::read_to_string(path).unwrap();
    std::fs::write(path, tamper(text)).unwrap();
}

/// Changes the first digit after `key` in the first line only — the
/// minimal header tamper: still parseable, different value.
fn tweak_header_number(text: String, key: &str) -> String {
    let eol = text.find('\n').unwrap();
    let at = text[..eol].find(key).expect("header field present") + key.len();
    let mut bytes = text.into_bytes();
    assert!(bytes[at].is_ascii_digit());
    bytes[at] = if bytes[at] == b'1' { b'2' } else { b'1' };
    String::from_utf8(bytes).unwrap()
}

#[test]
fn four_shard_merge_is_byte_identical_to_sequential() {
    let k = kernel();
    let baseline = sequential(&k, 24);
    let (cfg, base) = sharded("clean", 24, 4);
    scrub(&base, 4);

    let outcome = run_sharded(&k, Mode::Float, &cfg).unwrap();
    assert_eq!(outcome.shards, 4);
    assert_eq!(outcome.shard_retries, 0);
    assert_eq!(outcome.speculated, 0);
    assert!(outcome.missing_ranges.is_empty());
    assert_identical(&outcome.result, &baseline);

    // Every shard journal ends with its summary record.
    for i in 0..4 {
        let text = std::fs::read_to_string(shard_journal_path(&base, i, 4)).unwrap();
        assert!(
            text.lines().last().unwrap().starts_with("{\"fin\":1,"),
            "shard {i} lacks a summary record"
        );
    }

    // The journal set merges offline too, recovered via peek_campaign.
    let (name, mode, peeked) = peek_campaign(&shard_journal_path(&base, 0, 4)).unwrap();
    assert_eq!(name, k.name);
    assert_eq!(mode, Mode::Float);
    assert_eq!(peeked.injections, 24);
    assert_eq!(peeked.seed, 0xfeed_5eed);
    let paths: Vec<PathBuf> = (0..4).map(|i| shard_journal_path(&base, i, 4)).collect();
    let merged = merge_journals(&k, mode, &peeked, &paths, false).unwrap();
    assert_identical(&merged.result, &baseline);
    scrub(&base, 4);
}

#[test]
fn killed_shard_is_redispatched_and_merges_identically() {
    let k = kernel();
    let baseline = sequential(&k, 24);
    let (mut cfg, base) = sharded("killed", 24, 4);
    scrub(&base, 4);

    // Shard 1's first attempt dies (as if SIGKILLed) after writing 3 of
    // its 6 records; the re-dispatch resumes the journal and finishes.
    cfg.test_abort_shard = Some((1, 3, 1));
    let outcome = run_sharded(&k, Mode::Float, &cfg).unwrap();
    assert!(outcome.shard_retries >= 1, "the kill burned no retry");
    assert!(outcome.missing_ranges.is_empty());
    assert_identical(&outcome.result, &baseline);
    scrub(&base, 4);
}

#[test]
fn truncated_journal_tail_is_repaired_on_rerun() {
    let k = kernel();
    let baseline = sequential(&k, 24);
    let (cfg, base) = sharded("truncated", 24, 4);
    scrub(&base, 4);
    run_sharded(&k, Mode::Float, &cfg).unwrap();

    // Tear shard 2's journal mid-write: drop the summary and one whole
    // record, and leave the record before that cut mid-line.
    let path = shard_journal_path(&base, 2, 4);
    rewrite(&path, |text| {
        let mut lines: Vec<&str> = text.split_inclusive('\n').collect();
        lines.pop(); // the fin record
        lines.pop(); // a whole record
        let torn = lines.pop().unwrap(); // a record torn mid-line
        let mut out: String = lines.concat();
        out.push_str(&torn[..torn.len() / 2]);
        out
    });

    // Re-running the orchestrator resumes the intact prefix, replays
    // the lost tail, re-appends the summary, and merges clean.
    let outcome = run_sharded(&k, Mode::Float, &cfg).unwrap();
    assert_identical(&outcome.result, &baseline);
    let text = std::fs::read_to_string(&path).unwrap();
    assert!(text.lines().last().unwrap().starts_with("{\"fin\":1,"));
    scrub(&base, 4);
}

#[test]
fn bit_flipped_record_is_quarantined_and_redispatched() {
    let k = kernel();
    let baseline = sequential(&k, 24);
    let (cfg, base) = sharded("bitflip", 24, 4);
    scrub(&base, 4);
    run_sharded(&k, Mode::Float, &cfg).unwrap();

    // Flip one digit of a record's stored CRC in shard 3's journal.
    let path = shard_journal_path(&base, 3, 4);
    rewrite(&path, |text| {
        let line_start = text.match_indices('\n').nth(1).unwrap().0 + 1;
        let at = text[line_start..].find("\"crc\":").unwrap() + line_start + "\"crc\":".len();
        let mut bytes = text.into_bytes();
        assert!(bytes[at].is_ascii_digit());
        bytes[at] = if bytes[at] == b'1' { b'2' } else { b'1' };
        String::from_utf8(bytes).unwrap()
    });

    // The resume attempt trips the CRC, the journal is quarantined as
    // evidence, and a fresh attempt rebuilds the shard from scratch.
    let outcome = run_sharded(&k, Mode::Float, &cfg).unwrap();
    assert!(outcome.shard_retries >= 1, "corruption burned no retry");
    assert_identical(&outcome.result, &baseline);
    let mut quarantined = path.as_os_str().to_os_string();
    quarantined.push(".quarantined");
    assert!(
        PathBuf::from(quarantined).exists(),
        "corrupt journal was not kept as evidence"
    );
    scrub(&base, 4);
}

#[test]
fn straggling_shard_is_speculated_and_first_valid_result_wins() {
    let k = kernel();
    let baseline = sequential(&k, 24);
    let (mut cfg, base) = sharded("straggler", 24, 2);
    scrub(&base, 2);

    // Shard 0's first attempt stalls well past the straggler deadline;
    // the speculative duplicate finishes first and wins. Determinism
    // makes the race unobservable in the merged result.
    cfg.test_stall_shard = Some((0, Duration::from_millis(1500)));
    cfg.straggler = Some(Duration::from_millis(150));
    let outcome = run_sharded(&k, Mode::Float, &cfg).unwrap();
    assert!(outcome.speculated >= 1, "no speculation happened");
    assert!(outcome.missing_ranges.is_empty());
    assert_identical(&outcome.result, &baseline);
    scrub(&base, 2);
}

#[test]
fn exhausted_shard_fails_the_campaign_or_degrades_under_allow_partial() {
    let k = kernel();
    let (mut cfg, base) = sharded("lost", 24, 4);
    scrub(&base, 4);

    // Every attempt of shard 2 dies after writing a single record —
    // with a 6-record range and a budget of one retry, the shard can
    // never finish.
    cfg.test_abort_shard = Some((2, 1, u32::MAX));
    cfg.shard_retries = 1;
    let err = run_sharded(&k, Mode::Float, &cfg).unwrap_err();
    match err {
        NfpError::ShardLost {
            shard, start, end, ..
        } => {
            assert_eq!(shard, 2);
            assert_eq!((start, end), (12, 18));
        }
        other => panic!("expected ShardLost, got {other}"),
    }

    // Same chaos under --allow-partial: the report degrades to an
    // explicit missing range instead of failing.
    scrub(&base, 4);
    cfg.allow_partial = true;
    let outcome = run_sharded(&k, Mode::Float, &cfg).unwrap();
    assert_eq!(outcome.missing_ranges, vec![(12, 18)]);
    assert_eq!(outcome.result.records.len(), 18);
    let baseline = sequential(&k, 24);
    for (g, w) in outcome.result.records.iter().zip(
        baseline
            .records
            .iter()
            .enumerate()
            .filter(|(i, _)| !(12..18).contains(i))
            .map(|(_, r)| r),
    ) {
        assert_eq!(g, w, "surviving records must still match the baseline");
    }
    scrub(&base, 4);
}

#[test]
fn dispatch_modes_produce_byte_identical_sharded_reports() {
    // The dispatch differential contract at full campaign scale: a
    // sharded campaign executed with threaded or traced dispatch must
    // merge to a report byte-identical to undisturbed sequential
    // same-seed runs under per-instruction stepping and block
    // batching. Superblock traces in particular must not perturb a
    // single injection outcome even when flips land mid-trace.
    let k = kernel();
    let seq_in = |dispatch: Dispatch| {
        let mut c = campaign(24);
        c.dispatch = dispatch;
        let mut cfg = SupervisorConfig::new(c);
        cfg.workers = Some(1);
        run_supervised(&k, Mode::Float, &cfg).unwrap().result
    };
    let step = seq_in(Dispatch::Step);
    let block = seq_in(Dispatch::Block);
    assert_identical(&block, &step);

    for dispatch in [Dispatch::Threaded, Dispatch::Traced] {
        let (mut cfg, base) = sharded(&format!("dispatch_{dispatch}"), 24, 4);
        cfg.supervisor.campaign.dispatch = dispatch;
        scrub(&base, 4);
        let outcome = run_sharded(&k, Mode::Float, &cfg).unwrap();
        assert!(outcome.missing_ranges.is_empty(), "{dispatch}");
        assert_identical(&outcome.result, &step);

        // The shard journals themselves bind to the dispatch mode and
        // merge offline to the same report.
        let paths: Vec<PathBuf> = (0..4).map(|i| shard_journal_path(&base, i, 4)).collect();
        let (_, mode, peeked) = peek_campaign(&paths[0]).unwrap();
        assert_eq!(peeked.dispatch, dispatch);
        let merged = merge_journals(&k, mode, &peeked, &paths, false).unwrap();
        assert_identical(&merged.result, &step);
        scrub(&base, 4);
    }
}

// ---------------------------------------------------------------------
// Merge-time rejection: every tamper is a typed error, never a panic.
// ---------------------------------------------------------------------

/// Runs a clean 24-injection, 4-shard campaign and returns its journal
/// paths for tamper tests.
fn clean_journals(name: &str) -> (Kernel, PathBuf, Vec<PathBuf>) {
    let k = kernel();
    let (cfg, base) = sharded(name, 24, 4);
    scrub(&base, 4);
    run_sharded(&k, Mode::Float, &cfg).unwrap();
    let paths = (0..4).map(|i| shard_journal_path(&base, i, 4)).collect();
    (k, base, paths)
}

#[test]
fn merge_rejects_binding_mismatch_with_the_field_named() {
    let (k, base, paths) = clean_journals("bind");
    let pristine = std::fs::read_to_string(&paths[1]).unwrap();

    // A tampered campaign binding (the seed) names the field.
    rewrite(&paths[1], |t| tweak_header_number(t, "\"seed\":"));
    match merge_journals(&k, Mode::Float, &campaign(24), &paths, false) {
        Err(NfpError::JournalMismatch { field, .. }) => assert_eq!(field, "seed"),
        other => panic!("expected JournalMismatch, got {other:?}"),
    }

    // A tampered shard range binding likewise: the expected range is
    // recomputed from the claimed shard identity, not trusted.
    std::fs::write(&paths[1], &pristine).unwrap();
    rewrite(&paths[1], |t| tweak_header_number(t, "\"range_end\":"));
    match merge_journals(&k, Mode::Float, &campaign(24), &paths, false) {
        Err(NfpError::JournalMismatch { field, .. }) => assert_eq!(field, "range_end"),
        other => panic!("expected JournalMismatch, got {other:?}"),
    }
    scrub(&base, 4);
}

#[test]
fn merge_rejects_a_crc_failure() {
    let (k, base, paths) = clean_journals("crc");
    rewrite(&paths[2], |text| {
        // Flip a digit inside the stored outcome of the first record.
        let line_start = text.match_indices('\n').next().unwrap().0 + 1;
        let at = text[line_start..].find("\"at\":").unwrap() + line_start + "\"at\":".len();
        let mut bytes = text.into_bytes();
        assert!(bytes[at].is_ascii_digit());
        bytes[at] = if bytes[at] == b'1' { b'2' } else { b'1' };
        String::from_utf8(bytes).unwrap()
    });
    match merge_journals(&k, Mode::Float, &campaign(24), &paths, false) {
        Err(NfpError::ShardMerge { reason, .. }) => {
            assert!(reason.contains("corrupt record"), "reason: {reason}");
        }
        other => panic!("expected ShardMerge, got {other:?}"),
    }
    scrub(&base, 4);
}

#[test]
fn merge_rejects_a_range_gap_unless_partial() {
    let (k, base, paths) = clean_journals("gap");
    let holey: Vec<PathBuf> = paths.iter().filter(|p| *p != &paths[2]).cloned().collect();
    match merge_journals(&k, Mode::Float, &campaign(24), &holey, false) {
        Err(NfpError::ShardMerge { path, reason }) => {
            assert_eq!(path, "(journal set)");
            assert!(reason.contains("range gap"), "reason: {reason}");
            assert!(reason.contains("12..18"), "reason: {reason}");
        }
        other => panic!("expected ShardMerge, got {other:?}"),
    }

    // --allow-partial degrades the same set to explicit missing ranges.
    let partial = merge_journals(&k, Mode::Float, &campaign(24), &holey, true).unwrap();
    assert_eq!(partial.missing_ranges, vec![(12, 18)]);
    assert_eq!(partial.result.records.len(), 18);
    scrub(&base, 4);
}

#[test]
fn merge_rejects_a_duplicate_shard() {
    let (k, base, mut paths) = clean_journals("dupshard");
    paths.push(paths[1].clone());
    match merge_journals(&k, Mode::Float, &campaign(24), &paths, false) {
        Err(NfpError::ShardMerge { reason, .. }) => {
            assert!(reason.contains("duplicate shard 1"), "reason: {reason}");
        }
        other => panic!("expected ShardMerge, got {other:?}"),
    }
    scrub(&base, 4);
}

#[test]
fn merge_rejects_a_duplicate_record() {
    let (k, base, paths) = clean_journals("duprec");
    rewrite(&paths[0], |text| {
        let mut lines: Vec<&str> = text.split_inclusive('\n').collect();
        let copy = lines[1];
        lines.insert(2, copy);
        lines.concat()
    });
    match merge_journals(&k, Mode::Float, &campaign(24), &paths, false) {
        Err(NfpError::ShardMerge { reason, .. }) => {
            assert!(reason.contains("duplicate record"), "reason: {reason}");
        }
        other => panic!("expected ShardMerge, got {other:?}"),
    }
    scrub(&base, 4);
}

#[test]
fn merge_rejects_a_missing_shard_summary_unless_partial() {
    let (k, base, paths) = clean_journals("nofin");
    rewrite(&paths[3], |text| {
        let mut lines: Vec<&str> = text.split_inclusive('\n').collect();
        lines.pop(); // the fin record
        lines.concat()
    });
    match merge_journals(&k, Mode::Float, &campaign(24), &paths, false) {
        Err(NfpError::ShardMerge { reason, .. }) => {
            assert!(reason.contains("shard summary"), "reason: {reason}");
        }
        other => panic!("expected ShardMerge, got {other:?}"),
    }

    // All records are actually present, so a partial merge is whole.
    let merged = merge_journals(&k, Mode::Float, &campaign(24), &paths, true).unwrap();
    assert!(merged.missing_ranges.is_empty());
    assert_eq!(merged.result.records.len(), 24);
    scrub(&base, 4);
}

#[test]
fn orchestrator_rejects_misconfiguration() {
    let k = kernel();
    let mut sup = SupervisorConfig::new(campaign(8));
    sup.workers = Some(1);
    let no_journal = ShardConfig::new(sup.clone(), 2);
    assert!(matches!(
        run_sharded(&k, Mode::Float, &no_journal),
        Err(NfpError::Journal { .. })
    ));

    sup.journal = Some(tmp_base("misconfig"));
    let zero_shards = ShardConfig::new(sup, 0);
    assert!(matches!(
        run_sharded(&k, Mode::Float, &zero_shards),
        Err(NfpError::Workload { .. })
    ));
}
