//! Optional cache model — the paper's stated future work ("Further
//! work aims at incorporating a model for the cache").
//!
//! The evaluated LEON3 configuration is cacheless (Section V), and the
//! paper argues its two workloads have such high locality that "cache
//! misses play a minor role". This module makes that argument
//! testable: a direct-mapped data cache (write-through, no-allocate on
//! write, like the LEON3's optional D-cache) can be composed with the
//! [`crate::HwModel`] observer. With the cache enabled, memory cost
//! becomes strongly context-dependent — and the constant-cost
//! mechanistic model degrades, quantifying exactly why the paper
//! excluded caches from its first model (extension experiment E8).

use nfp_sim::{ExecInfo, Observer};
use nfp_sparc::Category;

/// Direct-mapped cache geometry and timing.
#[derive(Debug, Clone)]
pub struct CacheConfig {
    /// Number of cache lines (power of two).
    pub lines: usize,
    /// Line size in bytes (power of two).
    pub line_bytes: u32,
    /// Load latency on a hit, in cycles (replaces the SDRAM access).
    pub hit_cycles: u64,
    /// Additional line-fill penalty on a miss, in cycles.
    pub miss_fill_cycles: u64,
}

impl Default for CacheConfig {
    fn default() -> Self {
        // 4 KiB direct-mapped, 16-byte lines: a typical small LEON3
        // D-cache configuration.
        CacheConfig {
            lines: 256,
            line_bytes: 16,
            hit_cycles: 2,
            miss_fill_cycles: 12,
        }
    }
}

/// Direct-mapped cache state with hit/miss accounting.
#[derive(Debug, Clone)]
pub struct Cache {
    config: CacheConfig,
    /// Tag per line; `u64::MAX` marks an invalid line.
    tags: Vec<u64>,
    hits: u64,
    misses: u64,
}

impl Cache {
    /// An empty (all-invalid) cache.
    pub fn new(config: CacheConfig) -> Self {
        assert!(config.lines.is_power_of_two(), "line count must be 2^n");
        assert!(config.line_bytes.is_power_of_two(), "line size must be 2^n");
        let lines = config.lines;
        Cache {
            config,
            tags: vec![u64::MAX; lines],
            hits: 0,
            misses: 0,
        }
    }

    /// Simulates an access; returns true on hit. Loads allocate,
    /// stores are write-through no-allocate (they never change the
    /// tags, matching the modelled LEON3 D-cache policy).
    pub fn access(&mut self, addr: u32, is_load: bool) -> bool {
        let line_addr = (addr / self.config.line_bytes) as u64;
        let index = (line_addr as usize) & (self.config.lines - 1);
        let hit = self.tags[index] == line_addr;
        if hit {
            self.hits += 1;
        } else {
            self.misses += 1;
            if is_load {
                self.tags[index] = line_addr;
            }
        }
        hit
    }

    /// (hits, misses) so far.
    pub fn stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }

    /// Hit rate in [0, 1]; zero before any access.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// The geometry in use.
    pub fn config(&self) -> &CacheConfig {
        &self.config
    }
}

/// An observer wrapping [`crate::HwObserver`]'s accounting with a data
/// cache: loads that hit cost [`CacheConfig::hit_cycles`] instead of
/// the SDRAM access; misses cost the SDRAM access plus the fill
/// penalty. Non-memory instructions are charged exactly like the
/// cacheless model.
pub struct CachedHwObserver {
    inner: crate::HwObserver,
    cache: Cache,
    /// Extra cycles accumulated (may be negative in effect: hits are
    /// *cheaper* than the base model, tracked via a separate credit).
    adjustment_cycles: i64,
    adjustment_energy_j: f64,
}

impl CachedHwObserver {
    /// Wraps the cacheless hardware model with a data cache.
    pub fn new(hw: crate::HwModel, cache: CacheConfig) -> Self {
        CachedHwObserver {
            inner: crate::HwObserver::new(hw),
            cache: Cache::new(cache),
            adjustment_cycles: 0,
            adjustment_energy_j: 0.0,
        }
    }

    /// Ground-truth totals with the cache adjustment applied.
    pub fn totals(&self) -> crate::HwTotals {
        let base = *self.inner.totals();
        let cycles = (base.cycles as i64 + self.adjustment_cycles).max(0) as u64;
        crate::HwTotals {
            cycles,
            energy_j: (base.energy_j + self.adjustment_energy_j).max(0.0),
            instret: base.instret,
            row_misses: base.row_misses,
        }
    }

    /// Cache statistics.
    pub fn cache(&self) -> &Cache {
        &self.cache
    }
}

impl Observer for CachedHwObserver {
    #[inline]
    fn observe(&mut self, info: &ExecInfo) {
        self.inner.observe(info);
        if let Some(addr) = info.mem_addr {
            let is_load = info.category == Category::MemLoad;
            let hit = self.cache.access(addr, is_load);
            if is_load {
                if hit {
                    // A hit replaces the ~34-cycle SDRAM access with a
                    // short cache access: credit the difference.
                    let saved = 34i64 - self.cache.config.hit_cycles as i64;
                    self.adjustment_cycles -= saved;
                    self.adjustment_energy_j -= 140.0e-9;
                } else {
                    self.adjustment_cycles += self.cache.config.miss_fill_cycles as i64;
                    self.adjustment_energy_j += 30.0e-9;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nfp_sparc::{Instr, MemSize, Operand, Reg};

    fn load_info(addr: u32) -> ExecInfo {
        let instr = Instr::Load {
            size: MemSize::Word,
            signed: false,
            rd: Reg::o(0),
            rs1: Reg::o(1),
            op2: Operand::Imm(0),
        };
        ExecInfo {
            pc: 0x4000_0000,
            instr,
            category: instr.category(),
            mem_addr: Some(addr),
            branch_taken: None,
            fpu_rs2_bits: None,
            result_ones: 0,
        }
    }

    #[test]
    fn repeated_access_hits() {
        let mut cache = Cache::new(CacheConfig::default());
        assert!(!cache.access(0x4000_1000, true));
        assert!(cache.access(0x4000_1000, true));
        assert!(cache.access(0x4000_1004, true)); // same 16-byte line
        assert!(!cache.access(0x4000_1010, true)); // next line
        assert_eq!(cache.stats(), (2, 2));
        assert!((cache.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn direct_mapped_conflicts_evict() {
        let mut cache = Cache::new(CacheConfig {
            lines: 4,
            line_bytes: 16,
            ..CacheConfig::default()
        });
        // Two addresses 4 lines apart map to the same index.
        assert!(!cache.access(0x0, true));
        assert!(!cache.access(4 * 16, true)); // evicts line 0
        assert!(!cache.access(0x0, true)); // miss again
    }

    #[test]
    fn stores_do_not_allocate() {
        let mut cache = Cache::new(CacheConfig::default());
        assert!(!cache.access(0x100, false)); // write miss
        assert!(!cache.access(0x100, true)); // still a load miss
        assert!(cache.access(0x100, true)); // now allocated
    }

    #[test]
    fn cached_observer_speeds_up_hot_loops() {
        let hw = crate::HwModel::default();
        // Cacheless baseline: 100 loads of the same word.
        let mut plain = crate::HwObserver::new(hw.clone());
        for _ in 0..100 {
            plain.observe(&load_info(0x4000_2000));
        }
        let mut cached = CachedHwObserver::new(hw, CacheConfig::default());
        for _ in 0..100 {
            cached.observe(&load_info(0x4000_2000));
        }
        assert!(
            cached.totals().cycles < plain.totals().cycles / 3,
            "hot loop should be much faster with a cache: {} vs {}",
            cached.totals().cycles,
            plain.totals().cycles
        );
        assert!(cached.totals().energy_j < plain.totals().energy_j);
        assert_eq!(cached.cache().stats().0, 99);
    }

    #[test]
    fn cached_observer_slows_down_streaming_misses() {
        let hw = crate::HwModel::default();
        let mut plain = crate::HwObserver::new(hw.clone());
        let mut cached = CachedHwObserver::new(hw, CacheConfig::default());
        // Strided accesses that never revisit a line.
        for i in 0..100u32 {
            plain.observe(&load_info(0x4000_0000 + i * 64));
            cached.observe(&load_info(0x4000_0000 + i * 64));
        }
        assert!(cached.totals().cycles > plain.totals().cycles);
    }

    #[test]
    #[should_panic]
    fn non_power_of_two_geometry_rejected() {
        Cache::new(CacheConfig {
            lines: 100,
            ..CacheConfig::default()
        });
    }
}
