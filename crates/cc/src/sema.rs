//! Semantic analysis: name resolution, type checking, implicit
//! conversion insertion, and light constant folding.
//!
//! Produces a `CheckedUnit` the code generator consumes without further
//! validation.

use crate::ast::*;
use std::collections::HashMap;
use std::fmt;

/// Semantic error with source line.
#[derive(Debug, Clone, PartialEq)]
pub struct SemaError {
    /// What went wrong.
    pub message: String,
    /// 1-based source line.
    pub line: u32,
}

impl fmt::Display for SemaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for SemaError {}

/// Index of a local slot within a function (parameters first).
pub type LocalId = usize;

/// A local variable or array slot.
#[derive(Debug, Clone, PartialEq)]
pub struct LocalDef {
    /// Declared name.
    pub name: String,
    /// Element type (for arrays) or value type.
    pub ty: Type,
    /// `Some(len)` makes this an array of `len` elements of `ty`.
    pub array_len: Option<u32>,
}

/// A typed expression.
#[derive(Debug, Clone, PartialEq)]
pub struct Typed {
    /// Result type after conversions.
    pub ty: Type,
    /// The expression itself.
    pub kind: TKind,
}

/// Lvalue targets of assignments.
#[allow(missing_docs)]
#[derive(Debug, Clone, PartialEq)]
pub enum LValue {
    Local(LocalId),
    Global(String),
    /// Store through a computed address of element type `elem`.
    Mem {
        addr: Box<Typed>,
        elem: Type,
    },
}

/// Typed expression kinds.
#[allow(missing_docs)] // operator/operand fields mirror the AST
#[derive(Debug, Clone, PartialEq)]
pub enum TKind {
    /// Word-sized integer constant (bits, already truncated).
    ConstWord(u32),
    /// 64-bit constant.
    ConstU64(u64),
    /// Double constant.
    ConstDouble(f64),
    /// Read a scalar local.
    Local(LocalId),
    /// Read a scalar global.
    Global(String),
    /// Address of a local array (decay) or `&local`.
    AddrLocal(LocalId),
    /// Address of a global array (decay) or `&global`.
    AddrGlobal(String),
    Unary(UnOp, Box<Typed>),
    Binary(BinOp, Box<Typed>, Box<Typed>),
    Ternary(Box<Typed>, Box<Typed>, Box<Typed>),
    Assign(LValue, Box<Typed>),
    Call(String, Vec<Typed>),
    /// Load of `ty` through a pointer.
    Load(Box<Typed>),
    /// Conversion; `from` records the source type.
    Cast {
        from: Type,
        inner: Box<Typed>,
    },
}

/// Checked statements.
#[allow(missing_docs)]
#[derive(Debug, Clone, PartialEq)]
pub enum CStmt {
    Expr(Typed),
    If {
        cond: Typed,
        then_branch: Vec<CStmt>,
        else_branch: Vec<CStmt>,
    },
    While {
        cond: Typed,
        body: Vec<CStmt>,
    },
    For {
        init: Option<Box<CStmt>>,
        cond: Option<Typed>,
        step: Option<Typed>,
        body: Vec<CStmt>,
    },
    Return(Option<Typed>),
    Break,
    Continue,
    Block(Vec<CStmt>),
}

/// A checked function.
#[derive(Debug, Clone, PartialEq)]
pub struct CFunc {
    /// Function name.
    pub name: String,
    /// Return type.
    pub ret: Type,
    /// Number of leading `locals` entries that are parameters.
    pub param_count: usize,
    /// All local slots (parameters first, then declarations).
    pub locals: Vec<LocalDef>,
    /// Checked body.
    pub body: Vec<CStmt>,
}

/// A checked translation unit.
#[derive(Debug, Clone, PartialEq)]
pub struct CheckedUnit {
    /// Globals (unchanged from the parse).
    pub globals: Vec<Global>,
    /// Checked functions.
    pub functions: Vec<CFunc>,
}

/// Function signature: parameter types and return type.
#[derive(Debug, Clone, PartialEq)]
pub struct Signature {
    /// Parameter types in order.
    pub params: Vec<Type>,
    /// Return type.
    pub ret: Type,
}

/// Signatures of compiler builtins and the assembly runtime, available
/// to every translation unit.
pub fn builtin_signatures() -> HashMap<String, Signature> {
    let mut m = HashMap::new();
    let mut add = |name: &str, params: Vec<Type>, ret: Type| {
        m.insert(name.to_string(), Signature { params, ret });
    };
    add("sqrt", vec![Type::Double], Type::Double);
    add("fabs", vec![Type::Double], Type::Double);
    add("putchar", vec![Type::Int], Type::Void);
    add("emit", vec![Type::UInt], Type::Void);
    // 32x32 -> 64 widening multiply (single `umul` instruction).
    add("__umulw", vec![Type::UInt, Type::UInt], Type::U64);
    // Raw bit reinterpretation between double and u64 (free in soft
    // mode; an FP<->integer register move in hard mode).
    add("__dbits", vec![Type::Double], Type::U64);
    add("__bitsd", vec![Type::U64], Type::Double);
    // Assembly runtime helpers (also reachable from user code).
    add("__muldi3", vec![Type::U64, Type::U64], Type::U64);
    add("__udivdi3", vec![Type::U64, Type::U64], Type::U64);
    add("__umoddi3", vec![Type::U64, Type::U64], Type::U64);
    add("__ashldi3", vec![Type::U64, Type::Int], Type::U64);
    add("__lshrdi3", vec![Type::U64, Type::Int], Type::U64);
    m
}

struct Ctx {
    sigs: HashMap<String, Signature>,
    globals: HashMap<String, (Type, bool /* is_array */)>,
    locals: Vec<LocalDef>,
    scopes: Vec<HashMap<String, LocalId>>,
    loop_depth: usize,
    ret: Type,
    line: u32,
}

type SResult<T> = Result<T, SemaError>;

impl Ctx {
    fn err<T>(&self, message: impl Into<String>) -> SResult<T> {
        Err(SemaError {
            message: message.into(),
            line: self.line,
        })
    }

    fn lookup_local(&self, name: &str) -> Option<LocalId> {
        self.scopes
            .iter()
            .rev()
            .find_map(|scope| scope.get(name).copied())
    }

    fn declare(&mut self, name: &str, ty: Type, array_len: Option<u32>) -> SResult<LocalId> {
        let scope = self.scopes.last_mut().expect("scope stack non-empty");
        if scope.contains_key(name) {
            return Err(SemaError {
                message: format!("duplicate declaration of `{name}` in this scope"),
                line: self.line,
            });
        }
        let id = self.locals.len();
        self.locals.push(LocalDef {
            name: name.to_string(),
            ty,
            array_len,
        });
        self.scopes.last_mut().unwrap().insert(name.to_string(), id);
        Ok(id)
    }

    /// The usual arithmetic conversions of the dialect:
    /// double > u64 > uint > int, with uchar promoted to int.
    fn common_type(&self, a: &Type, b: &Type) -> SResult<Type> {
        use Type::*;
        if !a.is_integer() && *a != Double || !b.is_integer() && *b != Double {
            return self.err(format!("invalid operands of types {a} and {b}"));
        }
        // u64 <-> double mixing needs an explicit cast: the implicit
        // direction is ambiguous and the conversion is a runtime call.
        if (*a == U64 && *b == Double) || (*a == Double && *b == U64) {
            return self.err("no implicit conversion between u64 and double; cast explicitly");
        }
        Ok(if *a == Double || *b == Double {
            Double
        } else if *a == U64 || *b == U64 {
            U64
        } else if *a == UInt || *b == UInt {
            UInt
        } else {
            Int
        })
    }

    /// Inserts an implicit conversion from `e.ty` to `to`, if legal.
    fn convert(&self, e: Typed, to: &Type) -> SResult<Typed> {
        if e.ty == *to {
            return Ok(e);
        }
        let legal = match (&e.ty, to) {
            // u64 <-> double requires an explicit cast (see common_type).
            (Type::U64, Type::Double) | (Type::Double, Type::U64) => false,
            (a, b)
                if (a.is_integer() || *a == Type::Double)
                    && (b.is_integer() || *b == Type::Double) =>
            {
                true
            }
            // Pointers convert implicitly only between identical types
            // (handled above); anything else needs a cast.
            _ => false,
        };
        if !legal {
            return self.err(format!("cannot implicitly convert {} to {to}", e.ty));
        }
        Ok(cast_to(e, to.clone()))
    }
}

/// Wraps `e` in a cast node (with constant folding for literals).
fn cast_to(e: Typed, to: Type) -> Typed {
    // Fold casts of constants immediately.
    let folded = match (&e.kind, &to) {
        (TKind::ConstWord(v), t) if t.is_word() => Some(TKind::ConstWord(truncate_word(*v, t))),
        (TKind::ConstWord(v), Type::U64) => {
            // Sign-extend signed sources.
            let bits = if e.ty == Type::Int {
                *v as i32 as i64 as u64
            } else {
                *v as u64
            };
            Some(TKind::ConstU64(bits))
        }
        (TKind::ConstWord(v), Type::Double) => {
            let d = if e.ty == Type::Int {
                *v as i32 as f64
            } else {
                *v as f64
            };
            Some(TKind::ConstDouble(d))
        }
        (TKind::ConstU64(v), t) if t.is_word() => {
            Some(TKind::ConstWord(truncate_word(*v as u32, t)))
        }
        (TKind::ConstU64(v), Type::Double) => Some(TKind::ConstDouble(*v as f64)),
        (TKind::ConstDouble(v), Type::Int) => Some(TKind::ConstWord(*v as i32 as u32)),
        (TKind::ConstDouble(v), Type::UInt) => Some(TKind::ConstWord(*v as u32)),
        (TKind::ConstDouble(v), Type::U64) => Some(TKind::ConstU64(*v as u64)),
        _ => None,
    };
    match folded {
        Some(kind) => Typed { ty: to, kind },
        None => Typed {
            ty: to.clone(),
            kind: TKind::Cast {
                from: e.ty.clone(),
                inner: Box::new(e),
            },
        },
    }
}

fn truncate_word(v: u32, t: &Type) -> u32 {
    match t {
        Type::UChar => v & 0xff,
        _ => v,
    }
}

fn fold_int_binary(op: BinOp, a: u32, b: u32, ty: &Type) -> Option<u32> {
    let signed = *ty == Type::Int;
    let r = match op {
        BinOp::Add => a.wrapping_add(b),
        BinOp::Sub => a.wrapping_sub(b),
        BinOp::Mul => a.wrapping_mul(b),
        BinOp::Div => {
            if b == 0 {
                return None;
            }
            if signed {
                (a as i32).wrapping_div(b as i32) as u32
            } else {
                a / b
            }
        }
        BinOp::Rem => {
            if b == 0 {
                return None;
            }
            if signed {
                (a as i32).wrapping_rem(b as i32) as u32
            } else {
                a % b
            }
        }
        BinOp::Shl => a.wrapping_shl(b & 31),
        BinOp::Shr => {
            if signed {
                ((a as i32).wrapping_shr(b & 31)) as u32
            } else {
                a.wrapping_shr(b & 31)
            }
        }
        BinOp::And => a & b,
        BinOp::Or => a | b,
        BinOp::Xor => a ^ b,
        BinOp::Lt => {
            (if signed {
                (a as i32) < (b as i32)
            } else {
                a < b
            }) as u32
        }
        BinOp::Le => {
            (if signed {
                (a as i32) <= (b as i32)
            } else {
                a <= b
            }) as u32
        }
        BinOp::Gt => {
            (if signed {
                (a as i32) > (b as i32)
            } else {
                a > b
            }) as u32
        }
        BinOp::Ge => {
            (if signed {
                (a as i32) >= (b as i32)
            } else {
                a >= b
            }) as u32
        }
        BinOp::Eq => (a == b) as u32,
        BinOp::Ne => (a != b) as u32,
        BinOp::LogAnd => ((a != 0) && (b != 0)) as u32,
        BinOp::LogOr => ((a != 0) || (b != 0)) as u32,
    };
    Some(r)
}

impl Ctx {
    fn check_expr(&mut self, e: &Expr) -> SResult<Typed> {
        match e {
            Expr::IntLit(v) => {
                if *v > u32::MAX as i64 || *v < i32::MIN as i64 {
                    return self.err(format!("integer literal {v} out of 32-bit range"));
                }
                Ok(Typed {
                    ty: Type::Int,
                    kind: TKind::ConstWord(*v as u32),
                })
            }
            Expr::UIntLit(v) => {
                if *v > u32::MAX as u64 {
                    Ok(Typed {
                        ty: Type::U64,
                        kind: TKind::ConstU64(*v),
                    })
                } else {
                    Ok(Typed {
                        ty: Type::UInt,
                        kind: TKind::ConstWord(*v as u32),
                    })
                }
            }
            Expr::FloatLit(v) => Ok(Typed {
                ty: Type::Double,
                kind: TKind::ConstDouble(*v),
            }),
            Expr::Var(name) => {
                if let Some(id) = self.lookup_local(name) {
                    let def = &self.locals[id];
                    if def.array_len.is_some() {
                        // Array decays to a pointer to its first element.
                        return Ok(Typed {
                            ty: def.ty.clone().ptr(),
                            kind: TKind::AddrLocal(id),
                        });
                    }
                    return Ok(Typed {
                        ty: def.ty.clone(),
                        kind: TKind::Local(id),
                    });
                }
                if let Some((ty, is_array)) = self.globals.get(name) {
                    if *is_array {
                        return Ok(Typed {
                            ty: ty.clone().ptr(),
                            kind: TKind::AddrGlobal(name.clone()),
                        });
                    }
                    return Ok(Typed {
                        ty: ty.clone(),
                        kind: TKind::Global(name.clone()),
                    });
                }
                self.err(format!("unknown variable `{name}`"))
            }
            Expr::Unary(op, inner) => {
                let inner = self.check_expr(inner)?;
                match op {
                    UnOp::Neg => {
                        let ty = if inner.ty == Type::Double {
                            Type::Double
                        } else if inner.ty == Type::U64 {
                            Type::U64
                        } else if inner.ty.is_integer() {
                            // Promote; negation of uint stays uint like C.
                            if inner.ty == Type::UInt {
                                Type::UInt
                            } else {
                                Type::Int
                            }
                        } else {
                            return self.err(format!("cannot negate {}", inner.ty));
                        };
                        let inner = self.convert(inner, &ty)?;
                        if let TKind::ConstWord(v) = inner.kind {
                            return Ok(Typed {
                                ty,
                                kind: TKind::ConstWord(v.wrapping_neg()),
                            });
                        }
                        if let TKind::ConstDouble(v) = inner.kind {
                            return Ok(Typed {
                                ty,
                                kind: TKind::ConstDouble(-v),
                            });
                        }
                        if let TKind::ConstU64(v) = inner.kind {
                            return Ok(Typed {
                                ty,
                                kind: TKind::ConstU64(v.wrapping_neg()),
                            });
                        }
                        Ok(Typed {
                            ty,
                            kind: TKind::Unary(UnOp::Neg, Box::new(inner)),
                        })
                    }
                    UnOp::Not => {
                        if !inner.ty.is_integer() {
                            return self.err(format!("cannot apply ~ to {}", inner.ty));
                        }
                        let ty = if inner.ty == Type::U64 {
                            Type::U64
                        } else if inner.ty == Type::UInt {
                            Type::UInt
                        } else {
                            Type::Int
                        };
                        let inner = self.convert(inner, &ty)?;
                        if let TKind::ConstWord(v) = inner.kind {
                            return Ok(Typed {
                                ty,
                                kind: TKind::ConstWord(!v),
                            });
                        }
                        Ok(Typed {
                            ty,
                            kind: TKind::Unary(UnOp::Not, Box::new(inner)),
                        })
                    }
                    UnOp::LogNot => {
                        let inner = self.truthy(inner)?;
                        Ok(Typed {
                            ty: Type::Int,
                            kind: TKind::Unary(UnOp::LogNot, Box::new(inner)),
                        })
                    }
                }
            }
            Expr::Binary(op, a, b) => self.check_binary(*op, a, b),
            Expr::Ternary(c, a, b) => {
                let c_checked = self.clone_check(c)?;
                let c = self.truthy(c_checked)?;
                let a = self.check_expr(a)?;
                let b = self.check_expr(b)?;
                let ty = if a.ty == b.ty {
                    a.ty.clone()
                } else {
                    self.common_type(&a.ty, &b.ty)?
                };
                let a = self.convert(a, &ty)?;
                let b = self.convert(b, &ty)?;
                Ok(Typed {
                    ty,
                    kind: TKind::Ternary(Box::new(c), Box::new(a), Box::new(b)),
                })
            }
            Expr::Assign(lhs, rhs) => {
                let (lv, lty) = self.check_lvalue(lhs)?;
                let rhs = self.check_expr(rhs)?;
                let rhs = self.convert(rhs, &lty).map_err(|e| SemaError {
                    message: format!("in assignment: {}", e.message),
                    line: e.line,
                })?;
                Ok(Typed {
                    ty: lty,
                    kind: TKind::Assign(lv, Box::new(rhs)),
                })
            }
            Expr::Call(name, args) => {
                let sig = match self.sigs.get(name) {
                    Some(s) => s.clone(),
                    None => return self.err(format!("unknown function `{name}`")),
                };
                if sig.params.len() != args.len() {
                    return self.err(format!(
                        "`{name}` expects {} arguments, got {}",
                        sig.params.len(),
                        args.len()
                    ));
                }
                let mut targs = Vec::with_capacity(args.len());
                for (arg, pty) in args.iter().zip(&sig.params) {
                    let a = self.check_expr(arg)?;
                    let a = if a.ty == *pty {
                        a
                    } else {
                        self.convert(a, pty).map_err(|e| SemaError {
                            message: format!("in call to `{name}`: {}", e.message),
                            line: e.line,
                        })?
                    };
                    targs.push(a);
                }
                let arg_words: u32 = sig.params.iter().map(|p| p.words()).sum();
                if arg_words > 16 {
                    return self.err(format!(
                        "`{name}` passes {arg_words} argument words; the ABI supports at most 16"
                    ));
                }
                Ok(Typed {
                    ty: sig.ret.clone(),
                    kind: TKind::Call(name.clone(), targs),
                })
            }
            Expr::Index(base, idx) => {
                let addr = self.element_addr(base, idx)?;
                let elem = match &addr.ty {
                    Type::Ptr(inner) => (**inner).clone(),
                    _ => unreachable!(),
                };
                Ok(Typed {
                    ty: elem,
                    kind: TKind::Load(Box::new(addr)),
                })
            }
            Expr::Deref(inner) => {
                let p = self.check_expr(inner)?;
                match &p.ty {
                    Type::Ptr(elem) if **elem != Type::Void => Ok(Typed {
                        ty: (**elem).clone(),
                        kind: TKind::Load(Box::new(p)),
                    }),
                    other => self.err(format!("cannot dereference {other}")),
                }
            }
            Expr::AddrOf(inner) => match &**inner {
                Expr::Var(name) => {
                    if let Some(id) = self.lookup_local(name) {
                        let def = &self.locals[id];
                        if def.array_len.is_some() {
                            return self.err("&array is the array itself; drop the &");
                        }
                        return Ok(Typed {
                            ty: def.ty.clone().ptr(),
                            kind: TKind::AddrLocal(id),
                        });
                    }
                    if let Some((ty, is_array)) = self.globals.get(name) {
                        if *is_array {
                            return self.err("&array is the array itself; drop the &");
                        }
                        return Ok(Typed {
                            ty: ty.clone().ptr(),
                            kind: TKind::AddrGlobal(name.clone()),
                        });
                    }
                    self.err(format!("unknown variable `{name}`"))
                }
                Expr::Index(base, idx) => self.element_addr(base, idx),
                Expr::Deref(p) => self.check_expr(p),
                _ => self.err("& requires a variable, array element, or *pointer"),
            },
            Expr::Cast(to, inner) => {
                let v = self.check_expr(inner)?;
                let ok = match (&v.ty, to) {
                    (a, b) if a == b => true,
                    (a, b)
                        if (a.is_integer() || *a == Type::Double)
                            && (b.is_integer() || *b == Type::Double) =>
                    {
                        true
                    }
                    (Type::Ptr(_), Type::Ptr(_)) => true,
                    (Type::Ptr(_), Type::UInt | Type::Int) => true,
                    (Type::UInt | Type::Int, Type::Ptr(_)) => true,
                    _ => false,
                };
                if !ok {
                    return self.err(format!("cannot cast {} to {to}", v.ty));
                }
                Ok(cast_to(v, to.clone()))
            }
        }
    }

    // Helper because `self.truthy(self.check_expr(c)?)` borrows twice.
    fn clone_check(&mut self, e: &Expr) -> SResult<Typed> {
        self.check_expr(e)
    }

    /// Validates a value used in boolean context.
    fn truthy(&self, e: Typed) -> SResult<Typed> {
        match &e.ty {
            t if t.is_integer() => Ok(e),
            Type::Double => Ok(e),
            Type::Ptr(_) => Ok(e),
            other => self.err(format!("{other} cannot be used as a condition")),
        }
    }

    /// Address of `base[idx]` as a typed pointer expression.
    fn element_addr(&mut self, base: &Expr, idx: &Expr) -> SResult<Typed> {
        let b = self.check_expr(base)?;
        let elem = match &b.ty {
            Type::Ptr(e) if **e != Type::Void => (**e).clone(),
            other => return self.err(format!("cannot index {other}")),
        };
        let i = self.check_expr(idx)?;
        if !matches!(i.ty, Type::Int | Type::UInt | Type::UChar) {
            return self.err(format!("index must be a 32-bit integer, found {}", i.ty));
        }
        let i = self.convert(i, &Type::Int)?;
        // Represent as pointer arithmetic: base + idx (codegen scales).
        Ok(Typed {
            ty: elem.ptr(),
            kind: TKind::Binary(BinOp::Add, Box::new(b), Box::new(i)),
        })
    }

    fn check_lvalue(&mut self, e: &Expr) -> SResult<(LValue, Type)> {
        match e {
            Expr::Var(name) => {
                if let Some(id) = self.lookup_local(name) {
                    let def = &self.locals[id];
                    if def.array_len.is_some() {
                        return self.err("cannot assign to an array");
                    }
                    return Ok((LValue::Local(id), def.ty.clone()));
                }
                if let Some((ty, is_array)) = self.globals.get(name) {
                    if *is_array {
                        return self.err("cannot assign to an array");
                    }
                    return Ok((LValue::Global(name.clone()), ty.clone()));
                }
                self.err(format!("unknown variable `{name}`"))
            }
            Expr::Deref(p) => {
                let p = self.check_expr(p)?;
                match p.ty.clone() {
                    Type::Ptr(elem) if *elem != Type::Void => Ok((
                        LValue::Mem {
                            addr: Box::new(p),
                            elem: (*elem).clone(),
                        },
                        *elem,
                    )),
                    other => self.err(format!("cannot store through {other}")),
                }
            }
            Expr::Index(base, idx) => {
                let addr = self.element_addr(base, idx)?;
                let elem = match &addr.ty {
                    Type::Ptr(e) => (**e).clone(),
                    _ => unreachable!(),
                };
                Ok((
                    LValue::Mem {
                        addr: Box::new(addr),
                        elem: elem.clone(),
                    },
                    elem,
                ))
            }
            _ => self.err("expression is not assignable"),
        }
    }

    fn check_binary(&mut self, op: BinOp, a: &Expr, b: &Expr) -> SResult<Typed> {
        let ta = self.check_expr(a)?;
        let tb = self.check_expr(b)?;

        // Logical operators: operands independently truthy, result int.
        if matches!(op, BinOp::LogAnd | BinOp::LogOr) {
            let ta = self.truthy(ta)?;
            let tb = self.truthy(tb)?;
            return Ok(Typed {
                ty: Type::Int,
                kind: TKind::Binary(op, Box::new(ta), Box::new(tb)),
            });
        }

        // Pointer arithmetic and comparisons.
        if let Type::Ptr(_) = ta.ty {
            match op {
                BinOp::Add | BinOp::Sub => {
                    if !matches!(tb.ty, Type::Int | Type::UInt | Type::UChar) {
                        return self.err(format!(
                            "pointer arithmetic needs an int offset, got {}",
                            tb.ty
                        ));
                    }
                    let tb = self.convert(tb, &Type::Int)?;
                    let tb = if op == BinOp::Sub {
                        Typed {
                            ty: Type::Int,
                            kind: TKind::Unary(UnOp::Neg, Box::new(tb)),
                        }
                    } else {
                        tb
                    };
                    return Ok(Typed {
                        ty: ta.ty.clone(),
                        kind: TKind::Binary(BinOp::Add, Box::new(ta), Box::new(tb)),
                    });
                }
                _ if op.is_comparison() => {
                    if ta.ty != tb.ty {
                        return self.err(format!("comparing {} with {}", ta.ty, tb.ty));
                    }
                    return Ok(Typed {
                        ty: Type::Int,
                        kind: TKind::Binary(op, Box::new(ta), Box::new(tb)),
                    });
                }
                _ => return self.err(format!("invalid pointer operation {op:?}")),
            }
        }
        if matches!(tb.ty, Type::Ptr(_)) {
            return self.err("pointer must be the left operand");
        }

        // Shifts keep the left operand's (promoted) type.
        if matches!(op, BinOp::Shl | BinOp::Shr) {
            let lty = match &ta.ty {
                Type::UChar => Type::Int,
                t if t.is_integer() => t.clone(),
                other => return self.err(format!("cannot shift {other}")),
            };
            let ta = self.convert(ta, &lty)?;
            let tb = self.convert(tb, &Type::Int)?;
            if let (TKind::ConstWord(x), TKind::ConstWord(s)) = (&ta.kind, &tb.kind) {
                if lty.is_word() {
                    if let Some(r) = fold_int_binary(op, *x, *s, &lty) {
                        return Ok(Typed {
                            ty: lty,
                            kind: TKind::ConstWord(r),
                        });
                    }
                }
            }
            return Ok(Typed {
                ty: lty,
                kind: TKind::Binary(op, Box::new(ta), Box::new(tb)),
            });
        }

        // Usual arithmetic conversions.
        let ty = self.common_type(&ta.ty, &tb.ty)?;
        let ta = self.convert(ta, &ty)?;
        let tb = self.convert(tb, &ty)?;

        if ty == Type::Double && matches!(op, BinOp::Rem | BinOp::And | BinOp::Or | BinOp::Xor) {
            return self.err(format!("{op:?} is not defined on double"));
        }

        // Constant folding for 32-bit operands.
        if ty.is_word() {
            if let (TKind::ConstWord(x), TKind::ConstWord(y)) = (&ta.kind, &tb.kind) {
                if let Some(r) = fold_int_binary(op, *x, *y, &ty) {
                    let rty = if op.is_comparison() { Type::Int } else { ty };
                    return Ok(Typed {
                        ty: rty,
                        kind: TKind::ConstWord(r),
                    });
                }
            }
        }

        let rty = if op.is_comparison() { Type::Int } else { ty };
        Ok(Typed {
            ty: rty,
            kind: TKind::Binary(op, Box::new(ta), Box::new(tb)),
        })
    }

    fn check_stmts(&mut self, stmts: &[Stmt]) -> SResult<Vec<CStmt>> {
        self.scopes.push(HashMap::new());
        let result = stmts.iter().map(|s| self.check_stmt(s)).collect();
        self.scopes.pop();
        result
    }

    fn check_stmt(&mut self, s: &Stmt) -> SResult<CStmt> {
        match s {
            Stmt::Decl {
                ty,
                name,
                init,
                line,
            } => {
                self.line = *line;
                if *ty == Type::Void {
                    return self.err("variable of type void");
                }
                // Check the initialiser BEFORE declaring, so
                // `int x = x;` does not see itself.
                let init_val = match init {
                    Some(e) => Some(self.check_expr(e)?),
                    None => None,
                };
                let id = self.declare(name, ty.clone(), None)?;
                match init_val {
                    Some(v) => {
                        let v = self.convert(v, ty)?;
                        Ok(CStmt::Expr(Typed {
                            ty: ty.clone(),
                            kind: TKind::Assign(LValue::Local(id), Box::new(v)),
                        }))
                    }
                    None => Ok(CStmt::Block(Vec::new())),
                }
            }
            Stmt::ArrayDecl {
                elem,
                name,
                len,
                line,
            } => {
                self.line = *line;
                if *elem == Type::Void {
                    return self.err("array of void");
                }
                self.declare(name, elem.clone(), Some(*len))?;
                Ok(CStmt::Block(Vec::new()))
            }
            Stmt::Expr(e, line) => {
                self.line = *line;
                Ok(CStmt::Expr(self.check_expr(e)?))
            }
            Stmt::If {
                cond,
                then_branch,
                else_branch,
                line,
            } => {
                self.line = *line;
                let cond = self.check_expr(cond)?;
                let cond = self.truthy(cond)?;
                Ok(CStmt::If {
                    cond,
                    then_branch: self.check_stmts(then_branch)?,
                    else_branch: self.check_stmts(else_branch)?,
                })
            }
            Stmt::While { cond, body, line } => {
                self.line = *line;
                let cond = self.check_expr(cond)?;
                let cond = self.truthy(cond)?;
                self.loop_depth += 1;
                let body = self.check_stmts(body)?;
                self.loop_depth -= 1;
                Ok(CStmt::While { cond, body })
            }
            Stmt::For {
                init,
                cond,
                step,
                body,
                line,
            } => {
                self.line = *line;
                // The for header opens a scope so `for (int i = …)`
                // scopes `i` to the loop.
                self.scopes.push(HashMap::new());
                let init = match init {
                    Some(s) => Some(Box::new(self.check_stmt(s)?)),
                    None => None,
                };
                let cond = match cond {
                    Some(c) => {
                        let c = self.check_expr(c)?;
                        Some(self.truthy(c)?)
                    }
                    None => None,
                };
                let step = match step {
                    Some(e) => Some(self.check_expr(e)?),
                    None => None,
                };
                self.loop_depth += 1;
                let body = self.check_stmts(body)?;
                self.loop_depth -= 1;
                self.scopes.pop();
                Ok(CStmt::For {
                    init,
                    cond,
                    step,
                    body,
                })
            }
            Stmt::Return(value, line) => {
                self.line = *line;
                match (value, self.ret.clone()) {
                    (None, Type::Void) => Ok(CStmt::Return(None)),
                    (None, other) => self.err(format!("function returns {other}; value required")),
                    (Some(_), Type::Void) => self.err("void function cannot return a value"),
                    (Some(e), ret) => {
                        let v = self.check_expr(e)?;
                        let v = self.convert(v, &ret)?;
                        Ok(CStmt::Return(Some(v)))
                    }
                }
            }
            Stmt::Break(line) => {
                self.line = *line;
                if self.loop_depth == 0 {
                    return self.err("break outside a loop");
                }
                Ok(CStmt::Break)
            }
            Stmt::Continue(line) => {
                self.line = *line;
                if self.loop_depth == 0 {
                    return self.err("continue outside a loop");
                }
                Ok(CStmt::Continue)
            }
            Stmt::Block(stmts) => Ok(CStmt::Block(self.check_stmts(stmts)?)),
        }
    }
}

/// Checks a parsed unit, returning a typed unit ready for codegen.
pub fn check(unit: &Unit) -> Result<CheckedUnit, SemaError> {
    let mut sigs = builtin_signatures();
    let mut globals = HashMap::new();

    for g in &unit.globals {
        if globals
            .insert(g.name.clone(), (g.ty.clone(), g.is_array))
            .is_some()
        {
            return Err(SemaError {
                message: format!("duplicate global `{}`", g.name),
                line: g.line,
            });
        }
    }
    for f in &unit.functions {
        let sig = Signature {
            params: f.params.iter().map(|p| p.ty.clone()).collect(),
            ret: f.ret.clone(),
        };
        if sigs.insert(f.name.clone(), sig).is_some() {
            return Err(SemaError {
                message: format!("duplicate function `{}`", f.name),
                line: f.line,
            });
        }
    }

    let mut functions = Vec::with_capacity(unit.functions.len());
    for f in &unit.functions {
        let mut ctx = Ctx {
            sigs: sigs.clone(),
            globals: globals.clone(),
            locals: Vec::new(),
            scopes: vec![HashMap::new()],
            loop_depth: 0,
            ret: f.ret.clone(),
            line: f.line,
        };
        for p in &f.params {
            if p.ty == Type::Void {
                return Err(SemaError {
                    message: format!("parameter `{}` of type void", p.name),
                    line: f.line,
                });
            }
            ctx.declare(&p.name, p.ty.clone(), None)?;
        }
        let param_count = f.params.len();
        let mut body = ctx.check_stmts(&f.body)?;
        // Guarantee a trailing return so codegen's epilogue is always
        // reached with a defined value.
        match f.ret {
            Type::Void => body.push(CStmt::Return(None)),
            _ => body.push(CStmt::Return(Some(Typed {
                ty: f.ret.clone(),
                kind: match f.ret {
                    Type::U64 => TKind::ConstU64(0),
                    Type::Double => TKind::ConstDouble(0.0),
                    _ => TKind::ConstWord(0),
                },
            }))),
        }
        functions.push(CFunc {
            name: f.name.clone(),
            ret: f.ret.clone(),
            param_count,
            locals: ctx.locals,
            body,
        });
    }
    Ok(CheckedUnit {
        globals: unit.globals.clone(),
        functions,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn check_ok(src: &str) -> CheckedUnit {
        check(&parse(src).expect("parse")).expect("check")
    }

    fn check_err(src: &str) -> SemaError {
        check(&parse(src).expect("parse")).expect_err("expected sema error")
    }

    #[test]
    fn arithmetic_promotion() {
        let u = check_ok("double f(int a, double b) { return a + b; }");
        match &u.functions[0].body[0] {
            CStmt::Return(Some(t)) => assert_eq!(t.ty, Type::Double),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn uchar_promotes_to_int() {
        let u = check_ok("int f(uchar c) { return c + 1; }");
        match &u.functions[0].body[0] {
            CStmt::Return(Some(t)) => assert_eq!(t.ty, Type::Int),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn comparisons_yield_int() {
        let u = check_ok("int f(double a, double b) { return a < b; }");
        match &u.functions[0].body[0] {
            CStmt::Return(Some(t)) => assert_eq!(t.ty, Type::Int),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn array_decay_and_indexing() {
        check_ok("int g[8] = {1,2,3};\nint f(int i) { return g[i] + g[0]; }");
        check_ok("int f() { int a[4]; a[0] = 1; return a[0]; }");
    }

    #[test]
    fn pointer_arith_scales_only_int_offsets() {
        check_ok("double f(double* p, int i) { return p[i] + *(p + 1); }");
        assert!(
            check_err("double f(double* p, double d) { return *(p + d); }")
                .message
                .contains("offset")
        );
    }

    #[test]
    fn constant_folding() {
        let u = check_ok("int f() { return 3 * 4 + (1 << 4); }");
        match &u.functions[0].body[0] {
            CStmt::Return(Some(Typed {
                kind: TKind::ConstWord(28),
                ..
            })) => {}
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn errors() {
        assert!(check_err("int f() { return g(); }")
            .message
            .contains("unknown function"));
        assert!(check_err("int f() { return x; }")
            .message
            .contains("unknown variable"));
        assert!(check_err("int f(int a) { break; return a; }")
            .message
            .contains("break"));
        assert!(check_err("void f(int* p, double* q) { p = q; }")
            .message
            .contains("convert"));
        assert!(check_err("int f(int a, int a) { return 0; }")
            .message
            .contains("duplicate"));
        assert!(check_err("void f() { return 1; }")
            .message
            .contains("void function"));
    }

    #[test]
    fn scoping() {
        check_ok("int f() { int x = 1; { int x = 2; } return x; }");
        assert!(check_err("int f() { { int y = 1; } return y; }")
            .message
            .contains("unknown variable"));
    }

    #[test]
    fn builtins_have_signatures() {
        check_ok("double f(double x) { return sqrt(fabs(x)); }");
        check_ok("u64 f(uint a, uint b) { return __umulw(a, b); }");
        assert!(check_err("double f(double x) { return sqrt(x, x); }")
            .message
            .contains("arguments"));
    }

    #[test]
    fn implicit_return_appended() {
        let u = check_ok("int f() { }");
        assert!(matches!(
            u.functions[0].body.last(),
            Some(CStmt::Return(Some(_)))
        ));
    }

    #[test]
    fn u64_operations() {
        check_ok("u64 f(u64 a, u64 b) { return (a + b) * (a - b); }");
        check_ok("u64 f(u64 a) { return a << 3 >> 2; }");
        check_ok("int f(u64 a, u64 b) { return a < b; }");
    }

    #[test]
    fn assignment_conversion() {
        check_ok("void f() { uchar c; c = 300; }"); // truncation is allowed
        check_ok("void f(double* p) { *p = 1; }"); // int -> double
    }

    #[test]
    fn arg_word_limit() {
        let many = "void g(double a, double b, double c, double d, double e, double f, double h, double i, double j) {}\nvoid f() { g(1.0,2.0,3.0,4.0,5.0,6.0,7.0,8.0,9.0); }";
        assert!(check_err(many).message.contains("argument words"));
    }
}
