//! Function-level code emitter: instruction items with local labels and
//! symbolic relocations, resolved by the linker.

use nfp_sparc::cond::{FCond, ICond};
use nfp_sparc::{AluOp, Instr, Operand, Reg};

/// A local label within one function.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Label(pub u32);

/// One emitted item. Every variant except `Label` occupies exactly one
/// instruction word.
#[allow(missing_docs)]
#[derive(Debug, Clone, PartialEq)]
pub enum Item {
    /// A fully resolved instruction.
    I(Instr),
    /// Definition of a local label (occupies no space).
    Label(Label),
    /// Conditional branch to a local label.
    Branch { cond: ICond, target: Label },
    /// FP conditional branch to a local label.
    FBranch { cond: FCond, target: Label },
    /// Call to a global symbol.
    CallSym(String),
    /// `sethi %hi(sym), rd`.
    SetHi { sym: String, rd: Reg },
    /// `or rd, %lo(sym), rd`.
    OrLo { sym: String, rd: Reg },
}

/// Code for one function, pre-linking.
#[derive(Debug, Clone)]
pub struct FuncCode {
    /// Link symbol.
    pub name: String,
    /// Emitted items.
    pub items: Vec<Item>,
}

impl FuncCode {
    /// Number of instruction words this function occupies.
    pub fn len_words(&self) -> usize {
        self.items
            .iter()
            .filter(|i| !matches!(i, Item::Label(_)))
            .count()
    }

    /// Names of all symbols this function references.
    pub fn referenced_symbols(&self) -> impl Iterator<Item = &str> {
        self.items.iter().filter_map(|i| match i {
            Item::CallSym(s) => Some(s.as_str()),
            Item::SetHi { sym, .. } => Some(sym.as_str()),
            Item::OrLo { sym, .. } => Some(sym.as_str()),
            _ => None,
        })
    }
}

/// Emitter used by the code generator.
pub struct Emitter {
    /// Items emitted so far.
    pub items: Vec<Item>,
    next_label: u32,
}

impl Emitter {
    /// An empty emitter.
    pub fn new() -> Self {
        Emitter {
            items: Vec::new(),
            next_label: 0,
        }
    }

    /// Allocates a fresh local label.
    pub fn new_label(&mut self) -> Label {
        let l = Label(self.next_label);
        self.next_label += 1;
        l
    }

    /// Binds `label` at the current position.
    pub fn bind(&mut self, label: Label) {
        self.items.push(Item::Label(label));
    }

    /// Emits a resolved instruction.
    pub fn push(&mut self, i: Instr) {
        self.items.push(Item::I(i));
    }

    /// Emits a `nop`.
    pub fn nop(&mut self) {
        self.push(Instr::NOP);
    }

    /// ALU op.
    pub fn alu(&mut self, op: AluOp, rs1: Reg, op2: impl Into<Operand>, rd: Reg) {
        self.push(Instr::Alu {
            op,
            rd,
            rs1,
            op2: op2.into(),
        });
    }

    /// `mov` synthesised as `or %g0, src, rd`.
    pub fn mov(&mut self, src: impl Into<Operand>, rd: Reg) {
        let src = src.into();
        // Skip no-op register self-moves.
        if let Operand::Reg(r) = src {
            if r == rd {
                return;
            }
        }
        self.alu(AluOp::Or, nfp_sparc::regs::G0, src, rd);
    }

    /// Materialises an arbitrary 32-bit constant (1-2 instructions).
    pub fn set32(&mut self, value: u32, rd: Reg) {
        if Operand::fits_simm13(value as i32) {
            self.mov(value as i32, rd);
            return;
        }
        self.push(Instr::Sethi {
            rd,
            imm22: value >> 10,
        });
        if value & 0x3ff != 0 {
            self.alu(AluOp::Or, rd, (value & 0x3ff) as i32, rd);
        }
    }

    /// `cmp rs1, op2` = `subcc rs1, op2, %g0`.
    pub fn cmp(&mut self, rs1: Reg, op2: impl Into<Operand>) {
        self.alu(AluOp::SubCc, rs1, op2, nfp_sparc::regs::G0);
    }

    /// Conditional branch with its delay-slot `nop`.
    pub fn branch(&mut self, cond: ICond, target: Label) {
        self.items.push(Item::Branch { cond, target });
        self.nop();
    }

    /// Unconditional branch with its delay-slot `nop`.
    pub fn ba(&mut self, target: Label) {
        self.branch(ICond::A, target);
    }

    /// FP conditional branch with its delay-slot `nop`.
    pub fn fbranch(&mut self, cond: FCond, target: Label) {
        self.items.push(Item::FBranch { cond, target });
        self.nop();
    }

    /// Call to a symbol with its delay-slot `nop`.
    pub fn call(&mut self, sym: &str) {
        self.items.push(Item::CallSym(sym.to_string()));
        self.nop();
    }

    /// Materialises the address of `sym` into `rd` (2 instructions).
    pub fn load_sym(&mut self, sym: &str, rd: Reg) {
        self.items.push(Item::SetHi {
            sym: sym.to_string(),
            rd,
        });
        self.items.push(Item::OrLo {
            sym: sym.to_string(),
            rd,
        });
    }

    /// Finalises into a [`FuncCode`].
    pub fn finish(self, name: &str) -> FuncCode {
        FuncCode {
            name: name.to_string(),
            items: self.items,
        }
    }
}

impl Default for Emitter {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nfp_sparc::Reg;

    #[test]
    fn label_allocation_is_unique() {
        let mut e = Emitter::new();
        let a = e.new_label();
        let b = e.new_label();
        assert_ne!(a, b);
    }

    #[test]
    fn set32_small_uses_one_instruction() {
        let mut e = Emitter::new();
        e.set32(100, Reg::l(0));
        assert_eq!(e.items.len(), 1);
        e.set32(0x12345678, Reg::l(0));
        assert_eq!(e.items.len(), 3);
        // exactly hi-aligned value: sethi only
        let mut e2 = Emitter::new();
        e2.set32(0x40000, Reg::l(0)); // 1 << 18: %hi-only, no %lo bits
        assert_eq!(e2.items.len(), 1);
        assert!(matches!(e2.items[0], Item::I(Instr::Sethi { .. })));
    }

    #[test]
    fn self_move_is_elided() {
        let mut e = Emitter::new();
        e.mov(Reg::l(0), Reg::l(0));
        assert!(e.items.is_empty());
    }

    #[test]
    fn branches_carry_delay_nops() {
        let mut e = Emitter::new();
        let l = e.new_label();
        e.ba(l);
        assert_eq!(e.items.len(), 2);
        assert!(matches!(e.items[1], Item::I(i) if i.is_nop()));
    }

    #[test]
    fn len_words_ignores_labels() {
        let mut e = Emitter::new();
        let l = e.new_label();
        e.bind(l);
        e.nop();
        let l2 = e.new_label();
        e.bind(l2);
        let f = e.finish("f");
        assert_eq!(f.len_words(), 1);
    }

    #[test]
    fn referenced_symbols() {
        let mut e = Emitter::new();
        e.call("foo");
        e.load_sym("bar", Reg::l(0));
        let f = e.finish("f");
        let syms: Vec<_> = f.referenced_symbols().collect();
        assert_eq!(syms, vec!["foo", "bar", "bar"]);
    }
}
