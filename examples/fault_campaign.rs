//! SEU fault-injection campaign over the image-processing kernels.
//!
//! For one FSE (frame-size estimation) kernel and one mini-HEVC
//! kernel, inject seeded single-bit flips into registers, condition
//! codes, RAM, and the instruction stream, replay from the nearest
//! checkpoint, and classify every replay against the golden run:
//!
//! * masked — outputs identical, the flip hit dead state;
//! * SDC    — silent data corruption, outputs differ;
//! * trap   — an unrecoverable trap caught the corruption;
//! * hang   — the watchdog expired, control flow never converged.
//!
//! The per-instruction-category table reads as "how failure-prone is
//! the kernel while executing instructions of this Table I class" —
//! the reliability counterpart of the paper's per-category time and
//! energy attribution.
//!
//! Run with: `cargo run --release --example fault_campaign`

use nfp_bench::{report_campaign, run_campaign_parallel, CampaignConfig, Mode};
use nfp_repro::workloads::{fse_kernels, hevc_kernels, Preset};

fn main() {
    let preset = Preset::quick();
    let cfg = CampaignConfig {
        injections: 1000,
        seed: 0x5eed_f417,
        ..CampaignConfig::default()
    };

    let fse = &fse_kernels(&preset).expect("kernels")[0];
    let hevc = &hevc_kernels(&preset).expect("kernels")[0];

    for kernel in [fse, hevc] {
        match run_campaign_parallel(kernel, Mode::Float, &cfg) {
            Ok(result) => {
                println!("{}", report_campaign(&result));
                println!(
                    "golden run: {} instructions, {} recoverable trap(s) absorbed\n",
                    result.golden_instret, result.golden_recovered_traps
                );
            }
            Err(e) => {
                eprintln!("campaign over {} failed: {e}", kernel.name);
                std::process::exit(1);
            }
        }
    }
}
