//! Robustness property tests: the native decoders must tolerate
//! arbitrary and mutated inputs without panicking (the simulated
//! decoders inherit the same guards).

use nfp_workloads::hevc::{self, Config};
use nfp_workloads::synth::{loss_mask, test_image, test_sequence, Scene};
use nfp_workloads::{fse, Image};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Arbitrary bytes never panic the decoder.
    #[test]
    fn hevc_decoder_survives_garbage(bytes in prop::collection::vec(any::<u8>(), 0..256)) {
        let _ = hevc::decode(&bytes);
    }

    /// Single-bit corruptions of a valid stream never panic, and the
    /// header-intact ones still produce frames of the right geometry.
    #[test]
    fn hevc_decoder_survives_bit_flips(byte_idx in 8usize..64, bit in 0u8..8) {
        let frames = test_sequence(Scene::MovingObject, 16, 16, 2);
        let enc = hevc::encode(&frames, Config::Lowdelay, 32).expect("encode");
        let mut bytes = enc.bytes.clone();
        if byte_idx < bytes.len() {
            bytes[byte_idx] ^= 1 << bit;
        }
        if let Ok(decoded) = hevc::decode(&bytes) {
            for f in &decoded.frames {
                prop_assert_eq!(f.width * f.height, f.data.len());
            }
        }
    }

    /// FSE handles any block-aligned interior mask without panicking,
    /// and never modifies known samples.
    #[test]
    fn fse_preserves_known_samples(seed in 0u64..500, blocks in 1usize..5) {
        let img = test_image(40, 40, seed);
        let mask = loss_mask(40, 40, blocks, seed);
        let mut work = img.clone();
        fse::conceal(&mut work, &mask, 4);
        for (i, &m) in mask.iter().enumerate() {
            if !m {
                prop_assert_eq!(work.data[i], img.data[i]);
            }
        }
    }
}

#[test]
fn fse_with_empty_mask_is_identity() {
    let img = test_image(32, 32, 1);
    let mask = vec![false; 32 * 32];
    let mut work = img.clone();
    fse::conceal(&mut work, &mask, 8);
    assert_eq!(work, img);
}

#[test]
fn fse_block_fully_surrounded_by_loss_falls_back_gracefully() {
    // Carve a 3x3-block hole: the centre block's 16x16 support area is
    // entirely unknown, so it extrapolates from nothing on the first
    // pass and from neighbours after they are concealed.
    let size = 64;
    let img = test_image(size, size, 9);
    let mut mask = vec![false; size * size];
    for by in 2..5 {
        for bx in 2..5 {
            for y in 0..8 {
                for x in 0..8 {
                    mask[(by * 8 + y) * size + bx * 8 + x] = true;
                }
            }
        }
    }
    let mut work = img.clone();
    fse::conceal(&mut work, &mask, 8);
    // Every lost sample was written *something* (the extrapolation ran
    // to completion; raster order guarantees support from concealed
    // neighbours for the centre block).
    let touched = mask
        .iter()
        .enumerate()
        .filter(|&(i, &m)| m && work.data[i] != img.data[i])
        .count();
    assert!(touched > 0);
}

#[test]
fn encoder_rejects_unaligned_dimensions() {
    let frames = vec![Image::new(30, 24)];
    let err = hevc::encode(&frames, Config::Intra, 32)
        .expect_err("non-multiple-of-8 width must be rejected");
    assert!(
        err.to_string().contains("30x24"),
        "error should name the bad dimensions: {err}"
    );
}

#[test]
fn encoder_rejects_empty_sequence() {
    let err = hevc::encode(&[], Config::Intra, 32).expect_err("empty sequence must be rejected");
    assert!(err.to_string().contains("empty"), "{err}");
}

#[test]
fn decoded_geometry_matches_header_for_all_scenes() {
    for scene in Scene::ALL {
        let frames = test_sequence(scene, 24, 16, 2);
        let enc = hevc::encode(&frames, Config::Intra, 32).expect("encode");
        let dec = hevc::decode(&enc.bytes).unwrap();
        assert_eq!(dec.frames.len(), 2);
        assert_eq!(dec.frames[0].width, 24);
        assert_eq!(dec.frames[0].height, 16);
    }
}
