//! Memory bus: a flat big-endian RAM plus memory-mapped devices.
//!
//! The layout follows the LEON3 convention of RAM at `0x4000_0000`.
//! Devices claim address ranges outside RAM; the built-in
//! [`ConsoleDevice`] provides the bare-metal "UART" the workloads use
//! for output and result reporting.

use std::fmt;

/// Base address of RAM (LEON3 convention).
pub const RAM_BASE: u32 = 0x4000_0000;

/// Default RAM size: 64 MiB, comfortably larger than any workload image.
pub const DEFAULT_RAM_SIZE: u32 = 64 << 20;

/// Base address of the console device.
pub const CONSOLE_BASE: u32 = 0x8000_0000;

/// Console register: write a byte to the text output.
pub const CONSOLE_TX: u32 = CONSOLE_BASE;

/// Console register: write a 32-bit word to the structured result
/// stream (used by workloads to emit checksums the harness verifies).
pub const CONSOLE_EMIT: u32 = CONSOLE_BASE + 4;

/// Log2 of the dirty-tracking page size (4 KiB pages).
pub const PAGE_SHIFT: u32 = 12;

/// Dirty-tracking page size in bytes.
pub const PAGE_SIZE: usize = 1 << PAGE_SHIFT;

/// Contents of every dirty RAM page at a point in time, as captured by
/// [`Bus::snapshot_ram`]. Together with the boot-time pristine images
/// this is enough to rebuild the exact RAM state later, without copying
/// the full (mostly untouched) RAM.
#[derive(Debug, Clone)]
pub struct RamSnapshot {
    /// Dirty bitmap at snapshot time, one bit per page.
    dirty: Vec<u64>,
    /// `(page index, page contents)` for every dirty page.
    pages: Vec<(usize, Vec<u8>)>,
}

impl RamSnapshot {
    /// Number of pages captured.
    pub fn page_count(&self) -> usize {
        self.pages.len()
    }

    /// Approximate heap footprint in bytes.
    pub fn byte_size(&self) -> usize {
        self.pages.len() * PAGE_SIZE + self.dirty.len() * 8
    }
}

/// Access fault raised by the bus.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)]
pub enum BusFault {
    /// No RAM or device claims the address.
    Unmapped { addr: u32 },
    /// The access is not naturally aligned for its width.
    Misaligned { addr: u32, size: u32 },
    /// A bulk image load overlaps a segment loaded earlier; accepting
    /// it would make checkpoint re-pristining order-dependent and is
    /// almost always a malformed guest image.
    ImageOverlap { addr: u32, len: u32 },
}

impl fmt::Display for BusFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BusFault::Unmapped { addr } => write!(f, "unmapped address 0x{addr:08x}"),
            BusFault::Misaligned { addr, size } => {
                write!(f, "misaligned {size}-byte access at 0x{addr:08x}")
            }
            BusFault::ImageOverlap { addr, len } => {
                write!(
                    f,
                    "image segment [0x{addr:08x}, 0x{:08x}) overlaps an earlier segment",
                    addr.wrapping_add(*len)
                )
            }
        }
    }
}

impl std::error::Error for BusFault {}

/// A memory-mapped device. Accesses are word-granular; the bus performs
/// alignment checks before dispatching.
#[allow(clippy::len_without_is_empty)] // a zero-length device is useless
pub trait Device {
    /// Inclusive start of the claimed range.
    fn base(&self) -> u32;
    /// Length of the claimed range in bytes.
    fn len(&self) -> u32;
    /// Word load at `addr` (already validated to be in range).
    fn load(&mut self, addr: u32) -> u32;
    /// Word store at `addr`.
    fn store(&mut self, addr: u32, value: u32);
}

/// The console/host device: text output plus a structured word stream.
#[derive(Debug, Default)]
pub struct ConsoleDevice {
    /// Accumulated text written through [`CONSOLE_TX`].
    pub text: String,
    /// Accumulated words written through [`CONSOLE_EMIT`].
    pub words: Vec<u32>,
}

impl Device for ConsoleDevice {
    fn base(&self) -> u32 {
        CONSOLE_BASE
    }
    fn len(&self) -> u32 {
        8
    }
    fn load(&mut self, _addr: u32) -> u32 {
        0
    }
    fn store(&mut self, addr: u32, value: u32) {
        if addr == CONSOLE_TX {
            self.text.push((value & 0xff) as u8 as char);
        } else {
            self.words.push(value);
        }
    }
}

/// The system bus: RAM plus registered devices.
pub struct Bus {
    ram: Vec<u8>,
    ram_base: u32,
    /// One bit per [`PAGE_SIZE`] page, set by CPU-initiated stores.
    /// Bulk image loads ([`Bus::write_bytes`]) are recorded as pristine
    /// overlays instead, so checkpoints only carry run-time mutations.
    dirty: Vec<u64>,
    /// Boot-time images applied by [`Bus::write_bytes`], in order.
    pristine: Vec<(u32, Vec<u8>)>,
    /// The console is built in so the run harness can read it back
    /// without downcasting.
    pub console: ConsoleDevice,
    devices: Vec<Box<dyn Device>>,
}

impl Bus {
    /// A bus with the default RAM configuration.
    pub fn new() -> Self {
        Self::with_ram(RAM_BASE, DEFAULT_RAM_SIZE)
    }

    /// A bus with RAM of `size` bytes at `base`.
    pub fn with_ram(base: u32, size: u32) -> Self {
        let pages = (size as usize).div_ceil(PAGE_SIZE);
        Bus {
            ram: vec![0; size as usize],
            ram_base: base,
            dirty: vec![0; pages.div_ceil(64)],
            pristine: Vec::new(),
            console: ConsoleDevice::default(),
            devices: Vec::new(),
        }
    }

    /// Registers an additional device.
    pub fn add_device(&mut self, dev: Box<dyn Device>) {
        self.devices.push(dev);
    }

    /// The RAM base address.
    pub fn ram_base(&self) -> u32 {
        self.ram_base
    }

    /// The RAM size in bytes.
    pub fn ram_size(&self) -> u32 {
        self.ram.len() as u32
    }

    /// RAM offset of `addr` if the whole `size`-byte access fits in
    /// RAM. An access that *starts* in RAM but runs past the end (a
    /// RAM that is not a multiple of the access width, or a truncated
    /// image) is rejected here instead of panicking on the slice.
    #[inline]
    fn ram_index(&self, addr: u32, size: usize) -> Option<usize> {
        let off = addr.wrapping_sub(self.ram_base) as usize;
        if off < self.ram.len() && size <= self.ram.len() - off {
            Some(off)
        } else {
            None
        }
    }

    #[inline]
    fn mark_dirty(&mut self, ram_index: usize) {
        let page = ram_index >> PAGE_SHIFT;
        self.dirty[page >> 6] |= 1u64 << (page & 63);
    }

    /// Bulk-loads `bytes` into RAM at `addr` (harness use). The write
    /// is recorded as a pristine overlay, not a dirty page: it is part
    /// of the boot image that [`Bus::restore_ram`] rebuilds from.
    pub fn write_bytes(&mut self, addr: u32, bytes: &[u8]) -> Result<(), BusFault> {
        let idx = self
            .ram_index(addr, bytes.len())
            .ok_or(BusFault::Unmapped { addr })?;
        let len = bytes.len() as u32;
        let overlaps = self
            .pristine
            .iter()
            .any(|&(base, ref b)| addr < base.wrapping_add(b.len() as u32) && base < addr + len);
        if len > 0 && overlaps {
            return Err(BusFault::ImageOverlap { addr, len });
        }
        self.ram[idx..idx + bytes.len()].copy_from_slice(bytes);
        self.pristine.push((addr, bytes.to_vec()));
        Ok(())
    }

    /// Bulk-reads RAM (harness use).
    pub fn read_bytes(&self, addr: u32, len: usize) -> Result<&[u8], BusFault> {
        let idx = self
            .ram_index(addr, len)
            .ok_or(BusFault::Unmapped { addr })?;
        Ok(&self.ram[idx..idx + len])
    }

    /// Captures the contents of every page dirtied since boot (or since
    /// the last [`Bus::restore_ram`] that shrank the dirty set).
    pub fn snapshot_ram(&self) -> RamSnapshot {
        let mut pages = Vec::new();
        for page in self.dirty_pages() {
            let start = page << PAGE_SHIFT;
            let end = (start + PAGE_SIZE).min(self.ram.len());
            pages.push((page, self.ram[start..end].to_vec()));
        }
        RamSnapshot {
            dirty: self.dirty.clone(),
            pages,
        }
    }

    /// Rewinds RAM to the state captured by `snap`: pages dirty now but
    /// clean at snapshot time are rebuilt from zeros plus the pristine
    /// overlays; pages dirty at snapshot time are copied back. The
    /// snapshot must come from this bus (same RAM geometry and boot
    /// images).
    pub fn restore_ram(&mut self, snap: &RamSnapshot) {
        for page in self.dirty_pages() {
            let in_snap = snap
                .dirty
                .get(page >> 6)
                .is_some_and(|w| w >> (page & 63) & 1 != 0);
            if !in_snap {
                self.repristine_page(page);
            }
        }
        for (page, contents) in &snap.pages {
            let start = page << PAGE_SHIFT;
            self.ram[start..start + contents.len()].copy_from_slice(contents);
        }
        self.dirty.copy_from_slice(&snap.dirty);
    }

    /// Rebuilds one page from the boot state: zeros overlaid with any
    /// intersecting pristine images.
    fn repristine_page(&mut self, page: usize) {
        let start = page << PAGE_SHIFT;
        let end = (start + PAGE_SIZE).min(self.ram.len());
        self.ram[start..end].fill(0);
        // Split borrows: the overlay list is disjoint from `ram`.
        let pristine = std::mem::take(&mut self.pristine);
        for (addr, bytes) in &pristine {
            let img_start = addr.wrapping_sub(self.ram_base) as usize;
            let img_end = img_start + bytes.len();
            let lo = img_start.max(start);
            let hi = img_end.min(end);
            if lo < hi {
                self.ram[lo..hi].copy_from_slice(&bytes[lo - img_start..hi - img_start]);
            }
        }
        self.pristine = pristine;
    }

    /// Indices of all currently dirty pages, ascending.
    fn dirty_pages(&self) -> Vec<usize> {
        let mut out = Vec::new();
        for (wi, &word) in self.dirty.iter().enumerate() {
            let mut bits = word;
            while bits != 0 {
                let b = bits.trailing_zeros() as usize;
                out.push(wi * 64 + b);
                bits &= bits - 1;
            }
        }
        out
    }

    /// Byte ranges `(addr, len)` of all currently dirty pages, with
    /// adjacent pages coalesced. Fault campaigns use this to aim RAM
    /// upsets at live data instead of the untouched bulk of memory.
    pub fn dirty_ranges(&self) -> Vec<(u32, u32)> {
        let mut out: Vec<(u32, u32)> = Vec::new();
        for page in self.dirty_pages() {
            let start = self.ram_base + (page << PAGE_SHIFT) as u32;
            match out.last_mut() {
                Some((base, len)) if *base + *len == start => *len += PAGE_SIZE as u32,
                _ => out.push((start, PAGE_SIZE as u32)),
            }
        }
        out
    }

    /// Byte ranges `(addr, len)` of the boot-time images loaded through
    /// [`Bus::write_bytes`].
    pub fn pristine_ranges(&self) -> Vec<(u32, u32)> {
        self.pristine
            .iter()
            .map(|(addr, bytes)| (*addr, bytes.len() as u32))
            .collect()
    }

    #[inline]
    fn check_align(addr: u32, size: u32) -> Result<(), BusFault> {
        if !addr.is_multiple_of(size) {
            Err(BusFault::Misaligned { addr, size })
        } else {
            Ok(())
        }
    }

    /// 8-bit load.
    #[inline]
    pub fn load8(&mut self, addr: u32) -> Result<u8, BusFault> {
        match self.ram_index(addr, 1) {
            Some(i) => Ok(self.ram[i]),
            None => Ok(self.device_load(addr)? as u8),
        }
    }

    /// 16-bit big-endian load.
    #[inline]
    pub fn load16(&mut self, addr: u32) -> Result<u16, BusFault> {
        Self::check_align(addr, 2)?;
        match self.ram_index(addr, 2) {
            Some(i) => Ok(u16::from_be_bytes([self.ram[i], self.ram[i + 1]])),
            None => Ok(self.device_load(addr)? as u16),
        }
    }

    /// 32-bit big-endian load.
    #[inline]
    pub fn load32(&mut self, addr: u32) -> Result<u32, BusFault> {
        Self::check_align(addr, 4)?;
        match self.ram_index(addr, 4) {
            Some(i) => Ok(u32::from_be_bytes([
                self.ram[i],
                self.ram[i + 1],
                self.ram[i + 2],
                self.ram[i + 3],
            ])),
            None => self.device_load(addr),
        }
    }

    /// 64-bit big-endian load (for `ldd`/`lddf`). SPARC V8 requires
    /// doubleword (8-byte) alignment; a merely word-aligned address
    /// faults with `size: 8`.
    #[inline]
    pub fn load64(&mut self, addr: u32) -> Result<u64, BusFault> {
        Self::check_align(addr, 8)?;
        if let Some(i) = self.ram_index(addr, 8) {
            let mut b = [0u8; 8];
            b.copy_from_slice(&self.ram[i..i + 8]);
            return Ok(u64::from_be_bytes(b));
        }
        if self.ram_index(addr, 1).is_some() {
            // Starts in RAM but runs past the end: fault, never split.
            return Err(BusFault::Unmapped { addr });
        }
        let hi = self.load32(addr)? as u64;
        let lo = self.load32(addr + 4)? as u64;
        Ok((hi << 32) | lo)
    }

    /// 8-bit store.
    #[inline]
    pub fn store8(&mut self, addr: u32, value: u8) -> Result<(), BusFault> {
        match self.ram_index(addr, 1) {
            Some(i) => {
                self.ram[i] = value;
                self.mark_dirty(i);
                Ok(())
            }
            None => self.device_store(addr, value as u32),
        }
    }

    /// 16-bit big-endian store.
    #[inline]
    pub fn store16(&mut self, addr: u32, value: u16) -> Result<(), BusFault> {
        Self::check_align(addr, 2)?;
        match self.ram_index(addr, 2) {
            Some(i) => {
                self.ram[i..i + 2].copy_from_slice(&value.to_be_bytes());
                self.mark_dirty(i);
                Ok(())
            }
            None => self.device_store(addr, value as u32),
        }
    }

    /// 32-bit big-endian store.
    #[inline]
    pub fn store32(&mut self, addr: u32, value: u32) -> Result<(), BusFault> {
        Self::check_align(addr, 4)?;
        match self.ram_index(addr, 4) {
            Some(i) => {
                self.ram[i..i + 4].copy_from_slice(&value.to_be_bytes());
                self.mark_dirty(i);
                Ok(())
            }
            None => self.device_store(addr, value),
        }
    }

    /// 64-bit big-endian store (for `std`/`stdf`). SPARC V8 requires
    /// doubleword (8-byte) alignment; a merely word-aligned address
    /// faults with `size: 8`. The RAM path validates the whole access
    /// before writing, so a doubleword straddling the end of RAM faults
    /// without committing its first half (no torn store).
    #[inline]
    pub fn store64(&mut self, addr: u32, value: u64) -> Result<(), BusFault> {
        Self::check_align(addr, 8)?;
        if let Some(i) = self.ram_index(addr, 8) {
            self.ram[i..i + 8].copy_from_slice(&value.to_be_bytes());
            self.mark_dirty(i);
            // An 8-aligned doubleword never crosses a page boundary.
            return Ok(());
        }
        if self.ram_index(addr, 1).is_some() {
            // Starts in RAM but runs past the end: fault before any
            // half commits (no torn store).
            return Err(BusFault::Unmapped { addr });
        }
        self.store32(addr, (value >> 32) as u32)?;
        self.store32(addr + 4, value as u32)
    }

    #[cold]
    fn device_load(&mut self, addr: u32) -> Result<u32, BusFault> {
        if addr.wrapping_sub(self.console.base()) < self.console.len() {
            return Ok(self.console.load(addr));
        }
        for dev in &mut self.devices {
            if addr.wrapping_sub(dev.base()) < dev.len() {
                return Ok(dev.load(addr));
            }
        }
        Err(BusFault::Unmapped { addr })
    }

    #[cold]
    fn device_store(&mut self, addr: u32, value: u32) -> Result<(), BusFault> {
        if addr.wrapping_sub(self.console.base()) < self.console.len() {
            self.console.store(addr, value);
            return Ok(());
        }
        for dev in &mut self.devices {
            if addr.wrapping_sub(dev.base()) < dev.len() {
                dev.store(addr, value);
                return Ok(());
            }
        }
        Err(BusFault::Unmapped { addr })
    }
}

impl Default for Bus {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_bus() -> Bus {
        Bus::with_ram(RAM_BASE, 4096)
    }

    #[test]
    fn big_endian_word_layout() {
        let mut bus = small_bus();
        bus.store32(RAM_BASE, 0x1122_3344).unwrap();
        assert_eq!(bus.load8(RAM_BASE).unwrap(), 0x11);
        assert_eq!(bus.load8(RAM_BASE + 3).unwrap(), 0x44);
        assert_eq!(bus.load16(RAM_BASE + 2).unwrap(), 0x3344);
    }

    #[test]
    fn double_word_roundtrip() {
        let mut bus = small_bus();
        bus.store64(RAM_BASE + 8, 0x0102_0304_0506_0708).unwrap();
        assert_eq!(bus.load64(RAM_BASE + 8).unwrap(), 0x0102_0304_0506_0708);
        assert_eq!(bus.load32(RAM_BASE + 8).unwrap(), 0x0102_0304);
    }

    #[test]
    fn misaligned_accesses_fault() {
        let mut bus = small_bus();
        assert_eq!(
            bus.load32(RAM_BASE + 2),
            Err(BusFault::Misaligned {
                addr: RAM_BASE + 2,
                size: 4
            })
        );
        assert_eq!(
            bus.store16(RAM_BASE + 1, 0),
            Err(BusFault::Misaligned {
                addr: RAM_BASE + 1,
                size: 2
            })
        );
        assert!(bus.load64(RAM_BASE + 4).is_err());
    }

    #[test]
    fn word_aligned_doubles_still_fault_with_size_8() {
        // SPARC V8 doubleword accesses need 8-byte alignment; an
        // address that is only word-aligned must report the full
        // 8-byte access size, not 4.
        let mut bus = small_bus();
        let addr = RAM_BASE + 12;
        assert_eq!(
            bus.load64(addr),
            Err(BusFault::Misaligned { addr, size: 8 })
        );
        assert_eq!(
            bus.store64(addr, 0),
            Err(BusFault::Misaligned { addr, size: 8 })
        );
    }

    #[test]
    fn double_store_at_ram_end_does_not_tear() {
        // An 8-aligned doubleword whose second word falls past the end
        // of RAM must fault without committing the first half.
        let mut bus = Bus::with_ram(RAM_BASE, 4100);
        let addr = RAM_BASE + 4096;
        assert!(bus.store64(addr, 0xdead_beef_0123_4567).is_err());
        assert_eq!(bus.load32(addr).unwrap(), 0, "no partial write");
        assert!(bus.load64(addr).is_err());
    }

    #[test]
    fn unmapped_accesses_fault() {
        let mut bus = small_bus();
        assert_eq!(
            bus.load32(0x1000_0000),
            Err(BusFault::Unmapped { addr: 0x1000_0000 })
        );
        // one past the end of RAM
        let end = RAM_BASE + 4096;
        assert_eq!(bus.load8(end), Err(BusFault::Unmapped { addr: end }));
    }

    #[test]
    fn console_collects_text_and_words() {
        let mut bus = small_bus();
        for b in b"hi" {
            bus.store32(CONSOLE_TX, *b as u32).unwrap();
        }
        bus.store32(CONSOLE_EMIT, 0xabcd).unwrap();
        assert_eq!(bus.console.text, "hi");
        assert_eq!(bus.console.words, vec![0xabcd]);
    }

    #[test]
    fn bulk_image_load() {
        let mut bus = small_bus();
        bus.write_bytes(RAM_BASE + 16, &[1, 2, 3, 4]).unwrap();
        assert_eq!(bus.read_bytes(RAM_BASE + 16, 4).unwrap(), &[1, 2, 3, 4]);
        assert_eq!(bus.load32(RAM_BASE + 16).unwrap(), 0x0102_0304);
    }

    #[test]
    fn bulk_access_out_of_range_is_an_error() {
        let mut bus = small_bus();
        assert!(bus.write_bytes(0x1000_0000, &[0]).is_err());
        assert!(bus.write_bytes(RAM_BASE + 4094, &[0; 8]).is_err());
        assert!(bus.read_bytes(RAM_BASE + 4094, 8).is_err());
    }

    #[test]
    fn overlapping_image_segments_are_rejected() {
        let mut bus = small_bus();
        bus.write_bytes(RAM_BASE + 64, &[1; 32]).unwrap();
        // Disjoint on both sides is fine, including exactly adjacent.
        bus.write_bytes(RAM_BASE + 32, &[2; 32]).unwrap();
        bus.write_bytes(RAM_BASE + 96, &[3; 32]).unwrap();
        // Any intersection with an earlier segment is rejected.
        for (addr, len) in [
            (RAM_BASE + 64, 1usize),
            (RAM_BASE + 60, 8),
            (RAM_BASE + 95, 2),
        ] {
            assert_eq!(
                bus.write_bytes(addr, &vec![9; len]),
                Err(BusFault::ImageOverlap {
                    addr,
                    len: len as u32
                })
            );
        }
        // A rejected segment must leave RAM untouched.
        assert_eq!(bus.load8(RAM_BASE + 64).unwrap(), 1);
    }

    #[test]
    fn ragged_ram_edge_faults_instead_of_panicking() {
        // A RAM whose size is not a multiple of the access width used
        // to slice out of bounds for an access that starts on the last
        // bytes; every width must fault cleanly instead.
        let mut bus = Bus::with_ram(RAM_BASE, 4098);
        let last2 = RAM_BASE + 4096;
        assert!(bus.load16(last2).is_ok());
        assert!(bus.load32(last2).is_err());
        assert!(bus.store32(last2, 0).is_err());
        let mut odd = Bus::with_ram(RAM_BASE, 4097);
        let last = RAM_BASE + 4096;
        assert!(odd.load8(last).is_ok());
        assert!(odd.load16(last).is_err());
        assert!(odd.store16(last, 0).is_err());
    }

    #[test]
    fn snapshot_restore_rewinds_cpu_stores() {
        let mut bus = small_bus();
        bus.write_bytes(RAM_BASE, &[9; 64]).unwrap(); // boot image
        bus.store32(RAM_BASE + 128, 0xaaaa_bbbb).unwrap();
        let snap = bus.snapshot_ram();

        bus.store32(RAM_BASE + 128, 0xdead_beef).unwrap();
        bus.store8(RAM_BASE + 4, 0).unwrap(); // clobber boot image
        bus.restore_ram(&snap);

        assert_eq!(bus.load32(RAM_BASE + 128).unwrap(), 0xaaaa_bbbb);
        assert_eq!(bus.load8(RAM_BASE + 4).unwrap(), 9);
    }

    #[test]
    fn restore_repristines_pages_clean_at_snapshot_time() {
        let mut bus = Bus::with_ram(RAM_BASE, 64 * 1024);
        bus.write_bytes(RAM_BASE + 8192, &[7; 16]).unwrap();
        let snap = bus.snapshot_ram();
        assert_eq!(snap.page_count(), 0); // boot images are not dirty

        // Dirty a page that was clean at snapshot time, both over the
        // boot image and over untouched zeros.
        bus.store32(RAM_BASE + 8192, 0xffff_ffff).unwrap();
        bus.store32(RAM_BASE + 4096, 0x1234_5678).unwrap();
        bus.restore_ram(&snap);

        assert_eq!(bus.load32(RAM_BASE + 8192).unwrap(), 0x0707_0707);
        assert_eq!(bus.load32(RAM_BASE + 4096).unwrap(), 0);
        assert!(bus.dirty_ranges().is_empty());
    }

    #[test]
    fn dirty_ranges_coalesce_adjacent_pages() {
        let mut bus = Bus::with_ram(RAM_BASE, 64 * 1024);
        bus.store8(RAM_BASE, 1).unwrap();
        bus.store8(RAM_BASE + 4096, 1).unwrap();
        bus.store8(RAM_BASE + 3 * 4096, 1).unwrap();
        assert_eq!(
            bus.dirty_ranges(),
            vec![(RAM_BASE, 8192), (RAM_BASE + 3 * 4096, 4096)]
        );
    }
}
