//! Property-based differential testing of the soft-float runtime: for
//! random 64-bit patterns (covering NaN, infinities, subnormals and
//! zeros), every operation computed by the simulated soft-float
//! library must match the host's IEEE-754 double arithmetic bit for
//! bit (NaN results compared as "is NaN", since payloads are
//! implementation-defined).

use nfp_cc::{compile, CompileOptions, FloatMode, Program};
use nfp_sim::{Machine, MachineConfig};
use proptest::prelude::*;
use std::sync::OnceLock;

/// Address the harness writes test vectors to (inside RAM, well above
/// any image).
const INPUT_BASE: u32 = 0x4100_0000;

const DRIVER: &str = "
void emit64(u64 v) { emit((uint)(v >> 32)); emit((uint)v); }
int main() {
    uint* in = (uint*)0x41000000;
    int n = (int)in[0];
    int op = (int)in[1];
    uint* p = in + 2;
    for (int i = 0; i < n; i = i + 1) {
        u64 a = ((u64)p[0] << 32) | (u64)p[1];
        u64 b = ((u64)p[2] << 32) | (u64)p[3];
        p = p + 4;
        double x = __bitsd(a);
        double y = __bitsd(b);
        double r;
        if (op == 0) { r = x + y; }
        else if (op == 1) { r = x - y; }
        else if (op == 2) { r = x * y; }
        else if (op == 3) { r = x / y; }
        else if (op == 4) { r = sqrt(x); }
        else { r = fabs(x); }
        emit64(__dbits(r));
        emit((uint)(x < y) | ((uint)(x <= y) << 1) | ((uint)(x == y) << 2)
             | ((uint)(x != y) << 3) | ((uint)(x > y) << 4) | ((uint)(x >= y) << 5));
    }
    return 0;
}
";

fn driver_program() -> &'static Program {
    static PROG: OnceLock<Program> = OnceLock::new();
    PROG.get_or_init(|| {
        compile(DRIVER, &CompileOptions::new(FloatMode::Soft)).expect("driver compiles")
    })
}

/// Runs a batch of (a, b) operand pairs through operation `op` on the
/// FPU-less simulated core.
fn run_batch(op: u32, pairs: &[(u64, u64)]) -> Vec<(u64, u32)> {
    let program = driver_program();
    let mut machine = Machine::new(MachineConfig {
        fpu_enabled: false,
        ..MachineConfig::default()
    });
    machine
        .load_image(program.base, &program.words)
        .expect("image fits in RAM");
    let mut input = Vec::with_capacity(8 + pairs.len() * 16);
    input.extend_from_slice(&(pairs.len() as u32).to_be_bytes());
    input.extend_from_slice(&op.to_be_bytes());
    for (a, b) in pairs {
        input.extend_from_slice(&a.to_be_bytes());
        input.extend_from_slice(&b.to_be_bytes());
    }
    machine
        .bus
        .write_bytes(INPUT_BASE, &input)
        .expect("input fits in RAM");
    let result = machine
        .run(200_000_000 + pairs.len() as u64 * 1_000_000)
        .expect("batch run failed");
    result
        .words
        .chunks_exact(3)
        .map(|c| (((c[0] as u64) << 32) | c[1] as u64, c[2]))
        .collect()
}

fn native(op: u32, a: f64, b: f64) -> f64 {
    match op {
        0 => a + b,
        1 => a - b,
        2 => a * b,
        3 => a / b,
        4 => a.sqrt(),
        _ => a.abs(),
    }
}

fn native_cmp_bits(a: f64, b: f64) -> u32 {
    (a < b) as u32
        | ((a <= b) as u32) << 1
        | ((a == b) as u32) << 2
        | ((a != b) as u32) << 3
        | ((a > b) as u32) << 4
        | ((a >= b) as u32) << 5
}

fn check_batch(op: u32, pairs: &[(u64, u64)]) {
    let results = run_batch(op, pairs);
    assert_eq!(results.len(), pairs.len());
    for ((abits, bbits), (got_bits, got_cmp)) in pairs.iter().zip(results) {
        let a = f64::from_bits(*abits);
        let b = f64::from_bits(*bbits);
        let want = native(op, a, b);
        let got = f64::from_bits(got_bits);
        if want.is_nan() {
            assert!(
                got.is_nan(),
                "op {op}: {a:e} ({abits:#x}), {b:e} ({bbits:#x}): expected NaN, got {got:e}"
            );
        } else {
            assert_eq!(
                got_bits,
                want.to_bits(),
                "op {op}: {a:e} ({abits:#x}), {b:e} ({bbits:#x}): got {got:e}, want {want:e}"
            );
        }
        assert_eq!(
            got_cmp,
            native_cmp_bits(a, b),
            "comparison bits for {a:e} vs {b:e}"
        );
    }
}

/// Deliberately nasty values: zeros, subnormals, boundaries, NaN, inf.
fn edge_values() -> Vec<u64> {
    vec![
        0x0000_0000_0000_0000, // +0
        0x8000_0000_0000_0000, // -0
        0x0000_0000_0000_0001, // smallest subnormal
        0x800f_ffff_ffff_ffff, // largest negative subnormal
        0x0010_0000_0000_0000, // smallest normal
        0x3ff0_0000_0000_0000, // 1.0
        0x3ff0_0000_0000_0001, // 1.0 + ulp
        0xbff0_0000_0000_0000, // -1.0
        0x7fef_ffff_ffff_ffff, // max finite
        0x7ff0_0000_0000_0000, // +inf
        0xfff0_0000_0000_0000, // -inf
        0x7ff8_0000_0000_0000, // qNaN
        0x7ff0_0000_0000_0001, // sNaN
        0x4340_0000_0000_0000, // 2^53
        0x4330_0000_0000_0001, // 2^52 + ulp
        0x3cb0_0000_0000_0000, // 2^-52
        0x4059_0000_0000_0000, // 100.0
        0x3fd5_5555_5555_5555, // ~1/3
    ]
}

#[test]
fn edge_case_matrix_all_ops() {
    let values = edge_values();
    let mut pairs = Vec::new();
    for &a in &values {
        for &b in &values {
            pairs.push((a, b));
        }
    }
    for op in 0..6 {
        check_batch(op, &pairs);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn random_bit_patterns_match_native(
        pairs in prop::collection::vec((any::<u64>(), any::<u64>()), 32),
        op in 0u32..6,
    ) {
        check_batch(op, &pairs);
    }

    #[test]
    fn random_normal_arithmetic_matches_native(
        pairs in prop::collection::vec(
            (
                (-1.0e300f64..1.0e300).prop_map(f64::to_bits),
                (-1.0e300f64..1.0e300).prop_map(f64::to_bits),
            ),
            32,
        ),
        op in 0u32..4,
    ) {
        check_batch(op, &pairs);
    }

    #[test]
    fn subnormal_neighbourhood(
        pairs in prop::collection::vec((0u64..0x20_0000_0000_0000, 0u64..0x20_0000_0000_0000), 32),
        op in 0u32..4,
    ) {
        check_batch(op, &pairs);
    }
}
