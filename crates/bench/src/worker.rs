//! The campaign worker-process protocol and the worker side of it.
//!
//! [`crate::supervisor`] in [`WorkerIsolation::Process`] mode drives
//! one `repro worker` subprocess per slot over line-delimited flat JSON
//! on stdin/stdout (the same grammar as the campaign journal — see
//! [`crate::flatjson`]). The conversation is deliberately tiny:
//!
//! ```text
//! supervisor → worker   {"v":1,"kind":"hello","kernel":...}   once
//! worker → supervisor   {"kind":"ready","golden_instret":N}   once
//! supervisor → worker   {"kind":"run","i":17}                 per injection
//! worker → supervisor   {"kind":"done","i":17,...}            per injection
//! worker → supervisor   {"kind":"hb"}                         while idle
//! worker → supervisor   {"kind":"error","detail":"..."}       fatal, then exit
//! ```
//!
//! The hello carries the exact campaign-binding fields of the journal
//! header, so a worker rebuilds the *same* deterministic rig the
//! supervisor would have used in-process; the `ready` reply echoes the
//! golden instruction count as a cross-check that both sides really
//! built the same campaign. Heartbeats are gated on a busy flag: a
//! worker is silent *by design* mid-replay (the deadline watchdog owns
//! that phase) and audible everywhere else (handshake, idle), so idle
//! silence is always a dead or wedged process, never a slow replay.
//!
//! Framing is one JSON object per `\n`-terminated line, capped at
//! [`MAX_LINE`]. Anything else — an oversized line, a line torn by a
//! dying peer, invalid UTF-8, an unknown or out-of-order frame — is a
//! [`NfpError::ProtocolViolation`], never a hang and never a panic.
//!
//! [`WorkerIsolation::Process`]: crate::supervisor::WorkerIsolation::Process

use crate::campaign::{CampaignConfig, CampaignRig, InjectionRecord};
use crate::evaluation::Mode;
use crate::flatjson::{esc, parse_flat, Obj};
use crate::supervisor::{replay_spinning, target_fields, target_from_fields, JournalHeader};
use nfp_core::{NfpError, Outcome};
use nfp_sim::fault::plan;
use nfp_sim::{Dispatch, Fault};
use nfp_sparc::Category;
use nfp_workloads::Preset;
use std::io::{BufRead, Read, Write};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Workload preset a worker process rebuilds its kernel registry from.
/// Carried by name in the hello frame ([`Preset`] itself is a bag of
/// sizes; the two named presets are the only ones the CLI can ask for).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WorkerPreset {
    /// [`Preset::quick`] — reduced workload sizes.
    Quick,
    /// [`Preset::paper`] — evaluation-scale workloads.
    Paper,
}

impl WorkerPreset {
    /// Wire name of this preset.
    pub fn name(self) -> &'static str {
        match self {
            WorkerPreset::Quick => "quick",
            WorkerPreset::Paper => "paper",
        }
    }

    /// Inverse of [`WorkerPreset::name`].
    pub fn from_name(s: &str) -> Option<WorkerPreset> {
        match s {
            "quick" => Some(WorkerPreset::Quick),
            "paper" => Some(WorkerPreset::Paper),
            _ => None,
        }
    }

    /// The workload sizes this preset names.
    pub fn build(self) -> Preset {
        match self {
            WorkerPreset::Quick => Preset::quick(),
            WorkerPreset::Paper => Preset::paper(),
        }
    }
}

// ---------------------------------------------------------------------
// Framing.
// ---------------------------------------------------------------------

/// Longest protocol line either side will accept. Real frames are a few
/// hundred bytes; the cap exists so a corrupt or hostile peer cannot
/// make the reader buffer unboundedly.
pub(crate) const MAX_LINE: usize = 64 * 1024;

fn violation(detail: impl Into<String>) -> NfpError {
    NfpError::ProtocolViolation {
        detail: detail.into(),
    }
}

/// Reads one `\n`-terminated protocol line. `Ok(None)` is a clean EOF
/// (the peer closed the stream between frames); everything irregular —
/// an oversized line, a final line torn mid-write, invalid UTF-8 — is a
/// [`NfpError::ProtocolViolation`].
pub(crate) fn read_frame<R: BufRead>(r: &mut R) -> Result<Option<String>, NfpError> {
    let mut buf = Vec::new();
    let n = r
        .by_ref()
        .take(MAX_LINE as u64 + 1)
        .read_until(b'\n', &mut buf)
        .map_err(|e| violation(format!("frame read failed: {e}")))?;
    if n == 0 {
        return Ok(None);
    }
    if buf.last() != Some(&b'\n') {
        if n > MAX_LINE {
            return Err(violation(format!(
                "oversized frame: line exceeds {MAX_LINE} bytes"
            )));
        }
        return Err(violation(format!(
            "truncated frame: stream ended mid-line after {n} bytes"
        )));
    }
    buf.pop();
    String::from_utf8(buf)
        .map(Some)
        .map_err(|_| violation("frame is not valid UTF-8"))
}

fn opt_u64_json(v: Option<u64>) -> String {
    v.map_or_else(|| "null".to_string(), |n| n.to_string())
}

// ---------------------------------------------------------------------
// Supervisor → worker frames.
// ---------------------------------------------------------------------

/// The handshake the supervisor opens each worker process with: the
/// campaign identity (the journal-header binding fields) plus the
/// knobs only a subprocess needs.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct WorkerHello {
    /// Campaign binding — same fields, same meaning as the journal
    /// header, so the worker rebuilds the identical deterministic rig.
    pub(crate) header: JournalHeader,
    /// Preset to rebuild the kernel registry from.
    pub(crate) preset: WorkerPreset,
    /// Heartbeat emission interval while idle.
    pub(crate) heartbeat_ms: u64,
    /// Test hook: replay this plan index with a patched self-loop.
    pub(crate) spin_at: Option<u64>,
    /// Test hook: `abort()` when asked to replay this plan index.
    pub(crate) abort_at: Option<u64>,
}

pub(crate) fn render_hello(h: &WorkerHello) -> String {
    format!(
        concat!(
            "{{\"v\":1,\"kind\":\"hello\",\"kernel\":\"{}\",\"mode\":\"{}\",",
            "\"preset\":\"{}\",\"injections\":{},\"seed\":{},\"checkpoints\":{},",
            "\"dispatch\":\"{}\",\"escalation\":{},\"wall_ms\":{},\"golden_instret\":{},",
            "\"shard_index\":{},\"shard_count\":{},\"range_start\":{},\"range_end\":{},",
            "\"heartbeat_ms\":{},\"spin_at\":{},\"abort_at\":{}}}"
        ),
        esc(&h.header.kernel),
        h.header.mode,
        h.preset.name(),
        h.header.injections,
        h.header.seed,
        h.header.checkpoints,
        h.header.dispatch.as_str(),
        h.header.escalation,
        opt_u64_json(h.header.wall_ms),
        h.header.golden_instret,
        h.header.shard_index,
        h.header.shard_count,
        h.header.range_start,
        h.header.range_end,
        h.heartbeat_ms,
        opt_u64_json(h.spin_at),
        opt_u64_json(h.abort_at),
    )
}

pub(crate) fn parse_hello(line: &str) -> Result<WorkerHello, NfpError> {
    let obj = Obj(parse_flat(line).ok_or_else(|| violation("malformed hello frame"))?);
    if obj.str("kind") != Some("hello") {
        return Err(violation(format!(
            "expected a hello frame, got kind {:?}",
            obj.str("kind")
        )));
    }
    match obj.u64("v") {
        Some(1) => {}
        v => {
            return Err(violation(format!(
                "worker protocol version mismatch: supervisor speaks {}, this worker speaks v1",
                v.map_or_else(|| "(none)".to_string(), |n| format!("v{n}")),
            )))
        }
    }
    let field = |k: &str| violation(format!("hello lacks \"{k}\""));
    let mode = Mode::from_suffix(obj.str("mode").ok_or_else(|| field("mode"))?)
        .ok_or_else(|| violation("hello names an unknown mode"))?;
    let preset = WorkerPreset::from_name(obj.str("preset").ok_or_else(|| field("preset"))?)
        .ok_or_else(|| violation("hello names an unknown preset"))?;
    Ok(WorkerHello {
        header: JournalHeader {
            kernel: obj
                .str("kernel")
                .ok_or_else(|| field("kernel"))?
                .to_string(),
            mode: mode.suffix(),
            injections: obj.u64("injections").ok_or_else(|| field("injections"))?,
            seed: obj.u64("seed").ok_or_else(|| field("seed"))?,
            checkpoints: obj.u64("checkpoints").ok_or_else(|| field("checkpoints"))?,
            dispatch: obj
                .str("dispatch")
                .and_then(Dispatch::parse)
                .ok_or_else(|| field("dispatch"))?,
            escalation: obj.u64("escalation").ok_or_else(|| field("escalation"))?,
            wall_ms: obj.opt_u64("wall_ms").ok_or_else(|| field("wall_ms"))?,
            golden_instret: obj
                .u64("golden_instret")
                .ok_or_else(|| field("golden_instret"))?,
            shard_index: obj
                .u64("shard_index")
                .and_then(|n| u32::try_from(n).ok())
                .ok_or_else(|| field("shard_index"))?,
            shard_count: obj
                .u64("shard_count")
                .and_then(|n| u32::try_from(n).ok())
                .ok_or_else(|| field("shard_count"))?,
            range_start: obj.u64("range_start").ok_or_else(|| field("range_start"))?,
            range_end: obj.u64("range_end").ok_or_else(|| field("range_end"))?,
        },
        preset,
        heartbeat_ms: obj
            .u64("heartbeat_ms")
            .ok_or_else(|| field("heartbeat_ms"))?,
        spin_at: obj.opt_u64("spin_at").ok_or_else(|| field("spin_at"))?,
        abort_at: obj.opt_u64("abort_at").ok_or_else(|| field("abort_at"))?,
    })
}

pub(crate) fn render_run(index: usize) -> String {
    format!("{{\"kind\":\"run\",\"i\":{index}}}")
}

pub(crate) fn parse_run(line: &str) -> Result<usize, NfpError> {
    let obj = Obj(parse_flat(line).ok_or_else(|| violation("malformed run frame"))?);
    if obj.str("kind") != Some("run") {
        return Err(violation(format!(
            "expected a run frame, got kind {:?}",
            obj.str("kind")
        )));
    }
    usize::try_from(
        obj.u64("i")
            .ok_or_else(|| violation("run frame lacks \"i\""))?,
    )
    .map_err(|_| violation("run frame index overflows usize"))
}

// ---------------------------------------------------------------------
// Worker → supervisor frames.
// ---------------------------------------------------------------------

/// One frame a worker process sends upstream.
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum Reply {
    /// Handshake complete; echoes the golden instruction count the
    /// worker's own rig measured, as a campaign-identity cross-check.
    Ready { golden_instret: u64 },
    /// Idle keepalive.
    Hb,
    /// One injection replayed and classified.
    Done {
        index: usize,
        record: InjectionRecord,
    },
    /// The worker hit a deterministic error and is about to exit.
    Error { detail: String },
}

pub(crate) fn render_ready(golden_instret: u64) -> String {
    format!("{{\"kind\":\"ready\",\"golden_instret\":{golden_instret}}}")
}

pub(crate) const HB_FRAME: &str = "{\"kind\":\"hb\"}";

pub(crate) fn render_done(index: usize, rec: &InjectionRecord) -> String {
    let (kind, a, b) = target_fields(rec.fault.target);
    format!(
        "{{\"kind\":\"done\",\"i\":{},\"at\":{},\"target\":\"{}\",\"a\":{},\"b\":{},\"cat\":{},\"outcome\":\"{}\"}}",
        index,
        rec.fault.at,
        kind,
        a,
        b,
        rec.category
            .map_or_else(|| "null".to_string(), |c| c.index().to_string()),
        rec.outcome.name(),
    )
}

pub(crate) fn render_error(detail: &str) -> String {
    format!("{{\"kind\":\"error\",\"detail\":\"{}\"}}", esc(detail))
}

pub(crate) fn parse_reply(line: &str) -> Result<Reply, NfpError> {
    let bad = |what: &str| violation(format!("{what} in worker frame: {line:?}"));
    let obj = Obj(parse_flat(line).ok_or_else(|| bad("malformed JSON"))?);
    match obj.str("kind") {
        Some("hb") => Ok(Reply::Hb),
        Some("ready") => Ok(Reply::Ready {
            golden_instret: obj
                .u64("golden_instret")
                .ok_or_else(|| bad("missing golden_instret"))?,
        }),
        Some("error") => Ok(Reply::Error {
            detail: obj
                .str("detail")
                .ok_or_else(|| bad("missing detail"))?
                .to_string(),
        }),
        Some("done") => {
            let index = usize::try_from(obj.u64("i").ok_or_else(|| bad("missing index"))?)
                .map_err(|_| bad("index overflow"))?;
            let fault = Fault {
                at: obj.u64("at").ok_or_else(|| bad("missing at"))?,
                target: target_from_fields(
                    obj.str("target").ok_or_else(|| bad("missing target"))?,
                    obj.u64("a").ok_or_else(|| bad("missing a"))?,
                    obj.u64("b").ok_or_else(|| bad("missing b"))?,
                )
                .ok_or_else(|| bad("unknown fault target"))?,
            };
            let category = match obj.opt_u64("cat").ok_or_else(|| bad("missing cat"))? {
                None => None,
                Some(i) => Some(
                    *usize::try_from(i)
                        .ok()
                        .and_then(|i| Category::ALL.get(i))
                        .ok_or_else(|| bad("category out of range"))?,
                ),
            };
            let outcome =
                Outcome::from_name(obj.str("outcome").ok_or_else(|| bad("missing outcome"))?)
                    .ok_or_else(|| bad("unknown outcome"))?;
            Ok(Reply::Done {
                index,
                record: InjectionRecord {
                    fault,
                    category,
                    outcome,
                },
            })
        }
        other => Err(violation(format!(
            "unknown worker frame kind {other:?}: {line:?}"
        ))),
    }
}

/// Validates that a done frame answers the injection actually in
/// flight. The protocol is strictly one-run-one-done, so any other
/// index means the two sides have lost sync and the worker must go.
pub(crate) fn check_index(got: usize, expect: usize) -> Result<(), NfpError> {
    if got == expect {
        Ok(())
    } else {
        Err(violation(format!(
            "out-of-order done: worker answered injection {got} while {expect} was in flight"
        )))
    }
}

// ---------------------------------------------------------------------
// The worker side.
// ---------------------------------------------------------------------

/// Writes one frame to stdout, atomically and flushed (the supervisor
/// reads line-by-line; a buffered half-line would look like a torn
/// frame).
fn emit(line: &str) {
    let mut out = std::io::stdout().lock();
    let _ = out.write_all(line.as_bytes());
    let _ = out.write_all(b"\n");
    let _ = out.flush();
}

/// The `repro worker` entry point: speaks the protocol on
/// stdin/stdout until EOF. Returns the process exit code — 0 for a
/// clean shutdown (supervisor closed stdin), 1 after emitting an
/// `error` frame.
pub fn run_worker() -> i32 {
    match worker_main() {
        Ok(()) => 0,
        Err(e) => {
            emit(&render_error(&e.to_string()));
            1
        }
    }
}

fn worker_main() -> Result<(), NfpError> {
    let stdin = std::io::stdin();
    let mut stdin = std::io::BufReader::new(stdin.lock());
    let Some(line) = read_frame(&mut stdin)? else {
        // EOF before the hello: the supervisor was only probing that
        // worker processes can spawn at all.
        return Ok(());
    };
    let hello = parse_hello(&line)?;
    let campaign = CampaignConfig {
        injections: usize::try_from(hello.header.injections)
            .map_err(|_| violation("hello injection count overflows usize"))?,
        seed: hello.header.seed,
        checkpoints: usize::try_from(hello.header.checkpoints)
            .map_err(|_| violation("hello checkpoint count overflows usize"))?,
        wall: hello.header.wall_ms.map(Duration::from_millis),
        dispatch: hello.header.dispatch,
        escalation: u32::try_from(hello.header.escalation)
            .map_err(|_| violation("hello escalation overflows u32"))?,
    };
    let kernels = nfp_workloads::all_kernels(&hello.preset.build())?;
    let kernel = kernels
        .iter()
        .find(|k| k.name == hello.header.kernel)
        .ok_or_else(|| {
            violation(format!(
                "hello names kernel {:?}, which the {} preset does not contain",
                hello.header.kernel,
                hello.preset.name()
            ))
        })?;
    let mode = Mode::from_suffix(hello.header.mode).ok_or_else(|| violation("bad mode"))?;

    // Heartbeats start before the (potentially slow) rig build so the
    // supervisor's liveness watchdog covers the handshake too. The
    // busy gate silences them for exactly the span of each replay.
    let busy = Arc::new(AtomicBool::new(false));
    let alive = Arc::new(AtomicBool::new(true));
    let interval = Duration::from_millis(hello.heartbeat_ms.max(1));
    {
        let (busy, alive) = (Arc::clone(&busy), Arc::clone(&alive));
        std::thread::spawn(move || {
            while alive.load(Ordering::Relaxed) {
                if !busy.load(Ordering::Relaxed) {
                    emit(HB_FRAME);
                }
                std::thread::sleep(interval);
            }
        });
    }

    let (mut rig, space) = CampaignRig::prepare(kernel, mode, &campaign)?;
    if rig.golden_instret != hello.header.golden_instret {
        return Err(violation(format!(
            "golden instruction count mismatch: supervisor expects {}, this worker's rig ran {} \
             — preset or kernel registry skew between the two binaries",
            hello.header.golden_instret, rig.golden_instret
        )));
    }
    let faults = plan(&space, campaign.injections, campaign.seed);
    emit(&render_ready(rig.golden_instret));

    loop {
        let Some(line) = read_frame(&mut stdin)? else {
            alive.store(false, Ordering::Relaxed);
            return Ok(());
        };
        let index = parse_run(&line)?;
        let fault = *faults.get(index).ok_or_else(|| {
            violation(format!(
                "run frame indexes injection {index} of a {}-injection plan",
                faults.len()
            ))
        })?;
        if hello.abort_at == Some(index as u64) {
            // Test hook: die the way a heap-corrupting harness bug
            // would — no unwinding, no goodbye frame.
            std::process::abort();
        }
        busy.store(true, Ordering::Relaxed);
        let replayed = if hello.spin_at == Some(index as u64) {
            replay_spinning(&mut rig, &fault, campaign.wall)
        } else {
            rig.run_one(&fault, campaign.wall)
        };
        busy.store(false, Ordering::Relaxed);
        emit(&render_done(index, &replayed?));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nfp_sim::FaultTarget;

    fn hello() -> WorkerHello {
        WorkerHello {
            header: JournalHeader {
                kernel: "fse_img00".to_string(),
                mode: "float",
                injections: 24,
                seed: 0xfeed_5eed,
                checkpoints: 8,
                dispatch: Dispatch::Traced,
                escalation: 2,
                wall_ms: Some(400),
                golden_instret: 123_456,
                shard_index: 1,
                shard_count: 4,
                range_start: 6,
                range_end: 12,
            },
            preset: WorkerPreset::Quick,
            heartbeat_ms: 200,
            spin_at: None,
            abort_at: Some(5),
        }
    }

    #[test]
    fn hello_roundtrips() {
        let h = hello();
        assert_eq!(parse_hello(&render_hello(&h)).unwrap(), h);
        let plain = WorkerHello {
            spin_at: Some(3),
            abort_at: None,
            ..hello()
        };
        assert_eq!(parse_hello(&render_hello(&plain)).unwrap(), plain);
    }

    #[test]
    fn version_mismatch_handshake_is_a_protocol_violation() {
        let v2 = render_hello(&hello()).replacen("\"v\":1", "\"v\":2", 1);
        match parse_hello(&v2) {
            Err(NfpError::ProtocolViolation { detail }) => {
                assert!(detail.contains("version"), "detail: {detail}");
                assert!(detail.contains("v2"), "detail: {detail}");
            }
            other => panic!("expected ProtocolViolation, got {other:?}"),
        }
        // A frame that is not a hello at all is also a violation.
        assert!(parse_hello(HB_FRAME).is_err());
    }

    #[test]
    fn oversized_frame_is_a_protocol_violation() {
        let line = vec![b'x'; MAX_LINE + 10];
        match read_frame(&mut &line[..]) {
            Err(NfpError::ProtocolViolation { detail }) => {
                assert!(detail.contains("oversized"), "detail: {detail}");
            }
            other => panic!("expected ProtocolViolation, got {other:?}"),
        }
        // Exactly at the cap (plus the newline) still passes.
        let mut max = vec![b'y'; MAX_LINE];
        max.push(b'\n');
        assert_eq!(read_frame(&mut &max[..]).unwrap().unwrap().len(), MAX_LINE);
    }

    #[test]
    fn truncated_frame_is_a_protocol_violation() {
        // A peer that died mid-write leaves a newline-less tail.
        match read_frame(&mut &b"{\"kind\":\"hb\""[..]) {
            Err(NfpError::ProtocolViolation { detail }) => {
                assert!(detail.contains("truncated"), "detail: {detail}");
            }
            other => panic!("expected ProtocolViolation, got {other:?}"),
        }
        // Invalid UTF-8 cannot become a frame either.
        assert!(read_frame(&mut &b"\xff\xfe\n"[..]).is_err());
        // And a closed stream between frames is a clean EOF, not an error.
        assert_eq!(read_frame(&mut &b""[..]).unwrap(), None);
    }

    #[test]
    fn truncated_json_inside_a_frame_is_a_protocol_violation() {
        for bad in ["{\"kind\":\"done\",\"i\":3", "{\"kind\":\"done\",\"i\":}"] {
            assert!(
                matches!(parse_reply(bad), Err(NfpError::ProtocolViolation { .. })),
                "accepted: {bad:?}"
            );
        }
        // Structurally valid JSON with missing done fields is equally dead.
        assert!(parse_reply("{\"kind\":\"done\",\"i\":3}").is_err());
        assert!(parse_reply("{\"kind\":\"warp\"}").is_err());
    }

    #[test]
    fn out_of_order_done_is_a_protocol_violation() {
        check_index(3, 3).unwrap();
        match check_index(7, 3) {
            Err(NfpError::ProtocolViolation { detail }) => {
                assert!(detail.contains("out-of-order"), "detail: {detail}");
                assert!(
                    detail.contains('7') && detail.contains('3'),
                    "detail: {detail}"
                );
            }
            other => panic!("expected ProtocolViolation, got {other:?}"),
        }
    }

    #[test]
    fn replies_roundtrip() {
        assert_eq!(
            parse_reply(&render_ready(99)).unwrap(),
            Reply::Ready { golden_instret: 99 }
        );
        assert_eq!(parse_reply(HB_FRAME).unwrap(), Reply::Hb);
        let nasty = "panic: \"quoted\"\nwith newline";
        assert_eq!(
            parse_reply(&render_error(nasty)).unwrap(),
            Reply::Error {
                detail: nasty.to_string()
            }
        );
        let record = InjectionRecord {
            fault: Fault {
                at: 8_317,
                target: FaultTarget::Ram {
                    addr: 0x4100_0040,
                    bit: 31,
                },
            },
            category: Some(Category::MemLoad),
            outcome: Outcome::Sdc,
        };
        assert_eq!(
            parse_reply(&render_done(7, &record)).unwrap(),
            Reply::Done { index: 7, record }
        );
    }

    #[test]
    fn run_frames_roundtrip() {
        assert_eq!(parse_run(&render_run(41)).unwrap(), 41);
        assert!(parse_run("{\"kind\":\"hb\"}").is_err());
        assert!(parse_run("{\"kind\":\"run\"}").is_err());
    }
}
