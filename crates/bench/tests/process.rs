//! Process-isolation acceptance tests: a campaign whose workers run as
//! `repro worker` subprocesses survives worker aborts and harness-level
//! hangs that would be fatal to any in-process pool, and still produces
//! the byte-identical same-seed report — modulo the quarantined entry —
//! across isolation modes and kill/respawn interleavings.

use nfp_bench::{
    run_supervised, CampaignConfig, Mode, SupervisorConfig, SupervisorOutcome, WorkerIsolation,
};
use nfp_core::{HarnessCause, Outcome};
use nfp_workloads::{fse_kernels, Kernel, Preset};
use std::path::PathBuf;
use std::time::Duration;

fn kernel() -> Kernel {
    fse_kernels(&Preset::quick())
        .expect("quick preset builds")
        .into_iter()
        .next()
        .expect("quick preset has FSE kernels")
}

fn campaign(injections: usize) -> CampaignConfig {
    CampaignConfig {
        injections,
        seed: 0xfeed_5eed,
        ..CampaignConfig::default()
    }
}

/// A process-isolated supervisor pointed at the freshly built `repro`
/// binary (tests do not run inside it, so `current_exe` would name the
/// test harness — exactly the skew `worker_bin` exists for).
fn process_supervisor(campaign: CampaignConfig) -> SupervisorConfig {
    let mut cfg = SupervisorConfig::new(campaign);
    cfg.workers = Some(2);
    cfg.isolation = WorkerIsolation::Process;
    cfg.worker_bin = Some(PathBuf::from(env!("CARGO_BIN_EXE_repro")));
    cfg
}

fn thread_supervisor(campaign: CampaignConfig) -> SupervisorConfig {
    let mut cfg = SupervisorConfig::new(campaign);
    cfg.workers = Some(2);
    cfg
}

fn tmp_journal(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("nfp_process_{name}_{}.jsonl", std::process::id()))
}

/// Asserts every record except `except` matches the thread-mode
/// baseline exactly.
fn assert_records_match(got: &SupervisorOutcome, want: &SupervisorOutcome, except: Option<usize>) {
    assert_eq!(got.result.records.len(), want.result.records.len());
    for (i, (g, w)) in got
        .result
        .records
        .iter()
        .zip(&want.result.records)
        .enumerate()
    {
        if Some(i) != except {
            assert_eq!(g, w, "record {i} diverged across isolation modes");
        }
    }
}

#[test]
fn process_mode_report_is_byte_identical_to_thread_mode() {
    let k = kernel();
    let threads = run_supervised(&k, Mode::Float, &thread_supervisor(campaign(48))).unwrap();
    let procs = run_supervised(&k, Mode::Float, &process_supervisor(campaign(48))).unwrap();

    assert!(procs.process_isolation, "subprocess pool did not come up");
    assert!(!threads.process_isolation);
    assert_eq!(procs.kills, 0);
    assert_eq!(procs.respawns, 0);
    assert!(procs.quarantined.is_empty());
    assert_records_match(&procs, &threads, None);
    assert_eq!(procs.result.report, threads.result.report);
    assert_eq!(procs.result.report.render(), threads.result.report.render());
    assert_eq!(procs.result.golden_instret, threads.result.golden_instret);
}

#[test]
fn aborting_worker_is_retried_then_quarantined() {
    let k = kernel();
    let baseline = run_supervised(&k, Mode::Float, &thread_supervisor(campaign(24))).unwrap();

    // The worker `abort()`s whenever asked to replay injection 5: no
    // unwinding, no goodbye frame — SIGABRT. The supervisor must
    // respawn the slot, retry once on the fresh process (which aborts
    // again), quarantine, and carry the campaign to completion.
    let mut cfg = process_supervisor(campaign(24));
    cfg.test_worker_abort_at = Some(5);
    let outcome = run_supervised(&k, Mode::Float, &cfg).unwrap();

    assert!(outcome.process_isolation);
    assert_eq!(outcome.completed, 24);
    assert!(outcome.respawns >= 1, "no respawn after SIGABRT");
    assert_eq!(outcome.quarantined.len(), 1);
    let q = &outcome.quarantined[0];
    assert_eq!(q.index, 5);
    assert!(
        matches!(q.cause, HarnessCause::WorkerKilled { .. }),
        "expected a worker death, got {:?}",
        q.cause
    );
    assert_eq!(outcome.result.records[5].outcome, Outcome::HarnessFault);
    assert_eq!(
        outcome.result.records[5].fault,
        baseline.result.records[5].fault
    );
    // Everything else is byte-identical to the undisturbed thread run.
    assert_records_match(&outcome, &baseline, Some(5));
    assert_eq!(
        outcome.result.outcome_totals().get(Outcome::HarnessFault),
        1
    );
}

#[test]
fn hung_worker_is_sigkilled_respawned_and_quarantined() {
    let k = kernel();
    // Unbounded escalation: the instruction budget can never classify
    // the spin on its own, and no wall deadline is set inside the
    // replay either — the worker genuinely wedges, heartbeat-silent
    // (it is mid-replay), and only the supervisor's per-injection
    // deadline can put it down.
    let wedge = CampaignConfig {
        escalation: u32::MAX,
        ..campaign(48)
    };
    let baseline = run_supervised(&k, Mode::Float, &thread_supervisor(wedge.clone())).unwrap();
    assert_eq!(
        baseline.result.outcome_totals().get(Outcome::Hang),
        0,
        "pick a seed whose plan has no genuine hangs for this test"
    );

    let mut cfg = process_supervisor(wedge);
    cfg.test_spin_at = Some(3);
    cfg.deadline = Some(Duration::from_millis(1500));
    let outcome = run_supervised(&k, Mode::Float, &cfg).unwrap();

    assert!(outcome.process_isolation);
    assert_eq!(outcome.completed, 48);
    // Attempt one and the retry both wedge: two SIGKILLs, at least one
    // backoff respawn, then quarantine.
    assert!(outcome.kills >= 2, "kills = {}", outcome.kills);
    assert!(outcome.respawns >= 1, "respawns = {}", outcome.respawns);
    assert_eq!(outcome.quarantined.len(), 1);
    let q = &outcome.quarantined[0];
    assert_eq!(q.index, 3);
    assert_eq!(q.cause, HarnessCause::DeadlineExceeded);
    assert_eq!(outcome.result.records[3].outcome, Outcome::HarnessFault);
    assert_records_match(&outcome, &baseline, Some(3));
}

#[test]
fn process_journal_resumes_in_thread_mode() {
    let k = kernel();
    let baseline = run_supervised(&k, Mode::Float, &thread_supervisor(campaign(32))).unwrap();

    // Kill a journaled process-mode campaign after 10 writes...
    let journal = tmp_journal("cross_mode");
    let mut interrupted = process_supervisor(campaign(32));
    interrupted.journal = Some(journal.clone());
    interrupted.test_abort_after = Some(10);
    let aborted = run_supervised(&k, Mode::Float, &interrupted).unwrap();
    assert!(aborted.aborted);
    assert!(aborted.process_isolation);
    assert_eq!(aborted.completed, 10);

    // ...and resume it with plain thread workers: journals are
    // byte-compatible across isolation modes, and the merged result is
    // the uninterrupted thread-mode result.
    let mut resuming = thread_supervisor(campaign(32));
    resuming.journal = Some(journal.clone());
    resuming.resume = true;
    let resumed = run_supervised(&k, Mode::Float, &resuming).unwrap();
    assert!(!resumed.process_isolation);
    assert_eq!(resumed.resumed, 10);
    assert_eq!(resumed.completed, 32);
    assert_eq!(resumed.result.records, baseline.result.records);
    assert_eq!(
        resumed.result.report.render(),
        baseline.result.report.render()
    );
    let _ = std::fs::remove_file(&journal);
}

#[test]
fn missing_worker_binary_falls_back_to_thread_mode() {
    let k = kernel();
    let mut cfg = process_supervisor(campaign(16));
    cfg.worker_bin = Some(PathBuf::from("/nonexistent/repro-worker-binary"));
    let outcome = run_supervised(&k, Mode::Float, &cfg).unwrap();
    assert!(
        !outcome.process_isolation,
        "an unspawnable binary must fall back to threads"
    );
    assert_eq!(outcome.completed, 16);
    assert!(outcome.quarantined.is_empty());

    let baseline = run_supervised(&k, Mode::Float, &thread_supervisor(campaign(16))).unwrap();
    assert_records_match(&outcome, &baseline, None);
}
